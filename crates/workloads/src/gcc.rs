//! The `gcc` stand-in: a wide switch (jump table) over an IR opcode
//! stream, with helper calls and a bounded recursive evaluator — the
//! dispatch-plus-call-tree shape of 176.gcc's RTL passes.

use strata_asm::assemble;
use strata_machine::{layout, Program};
use strata_stats::rng::SmallRng;

use crate::Params;

/// Switch arms in the dispatcher.
const CASES: usize = 128;
/// Distinct helper procedures called from switch arms.
const HELPERS: usize = 32;
/// IR stream length.
const IR_LEN: usize = 1024;

/// Builds the `gcc` stand-in.
pub fn build_gcc(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let table = data_base + 0x1000;
    let passes = 12 * params.scale;

    let mut rng = SmallRng::seed_from_u64(params.seed(0x1766_CC00_DEAD_BEEF));
    let ir: Vec<u8> = (0..IR_LEN).map(|_| rng.gen_range(0..CASES as u8)).collect();

    let mut src = String::new();
    src.push_str(&format!("    li r13, {table}\n"));
    for c in 0..CASES {
        src.push_str(&format!("    li r1, c{c}\n    sw r1, {}(r13)\n", c * 4));
    }
    src.push_str(&format!(
        r"
    li r10, {data_base}
    li r12, {IR_LEN}
    li r5, {passes}
    li r4, 0
    li r9, 0x12345
pass:
    li r11, 0
iloop:
    add r7, r10, r11
    lbu r7, 0(r7)
    slli r7, r7, 2
    add r7, r7, r13
    lw r7, 0(r7)
    jr r7               ; the switch on the IR opcode
"
    ));
    for c in 0..CASES {
        let body = if c >= CASES - HELPERS {
            // The last 32 arms each call a distinct helper procedure,
            // giving the benchmark a wide spread of return targets.
            format!("    call helper{}\n", c - (CASES - HELPERS))
        } else {
            match c % 6 {
                0 => format!("    addi r4, r4, {}\n", c + 1),
                1 => format!("    xori r4, r4, {:#x}\n", c * 3 + 1),
                2 => "    add r4, r4, r11\n".to_string(),
                3 => format!("    slli r6, r4, {}\n    xor r4, r4, r6\n", 1 + c % 5),
                4 => format!("    srli r6, r4, {}\n    add r4, r4, r6\n", 1 + c % 7),
                _ => "    li r1, 3\n    call eval\n    add r4, r4, r2\n".to_string(),
            }
        };
        src.push_str(&format!("c{c}:\n{body}    jmp cnext\n"));
    }
    src.push_str(
        r"
cnext:
    addi r11, r11, 1
    cmp r11, r12
    bltu iloop
    trap 0x1
    addi r5, r5, -1
    cmpi r5, 0
    bne pass
    halt

{HELPERS}eval:                   ; bounded binary-recursive expression evaluator
    cmpi r1, 0
    bne eval_rec
    andi r2, r4, 0xF
    addi r2, r2, 1
    ret
eval_rec:
    push r1
    push r6
    addi r1, r1, -1
    call eval
    mov r6, r2
    lw r1, 4(sp)
    addi r1, r1, -1
    call eval
    add r2, r2, r6
    pop r6
    pop r1
    ret
",
    );
    // Helper procedures: 32 distinct bodies (folding, hash probes,
    // bookkeeping) so the call-site/return-target population is wide.
    let mut helpers = String::new();
    for h in 0..HELPERS {
        let body = match h % 4 {
            0 => format!(
                "    li r6, 0x10dcd\n    mul r9, r9, r6\n    addi r9, r9, {}\n    srli r6, r9, 16\n    add r4, r4, r6\n",
                700 + h
            ),
            1 => format!(
                "    andi r6, r4, 0xFF\n    slli r6, r6, 2\n    li r7, {{CSE}}\n    add r6, r6, r7\n    lw r7, {}(r6)\n    add r4, r4, r7\n    sw r4, {}(r6)\n",
                (h / 4) * 4, (h / 4) * 4
            ),
            2 => format!("    addi r4, r4, {}\n    xori r4, r4, {:#x}\n", h + 3, 0x1111 + h),
            _ => format!("    slli r6, r4, {}\n    xor r4, r4, r6\n    addi r4, r4, {}\n", 1 + h % 5, h),
        };
        helpers.push_str(&format!("helper{h}:\n{body}    ret\n"));
    }
    let src = src.replace("{HELPERS}", &helpers);
    let src = src.replace("{CSE}", &(data_base + 0x2000).to_string());

    let code = assemble(layout::APP_BASE, &src).expect("gcc assembles");
    Program::new("gcc", code, ir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn gcc_profile() {
        let p = build_gcc(&Params::default());
        let r = reference::run(&p, 100_000_000).unwrap();
        assert!(
            r.indirect_jumps >= (IR_LEN as u64) * 12,
            "{}",
            r.indirect_jumps
        );
        assert!(
            r.direct_calls > 1000,
            "case handlers call helpers: {}",
            r.direct_calls
        );
        assert!(r.returns > 1000);
        assert_ne!(r.checksum, 0);
        // Deterministic.
        assert_eq!(r, reference::run(&p, 100_000_000).unwrap());
    }
}
