//! Search workloads: `crafty` (deep recursive game-tree search — the
//! call/return-dominated extreme, like 186.crafty) and `twolf` (annealing
//! with a small move-type dispatch table, like 300.twolf).

use strata_asm::assemble;
use strata_machine::{layout, Program};

use crate::Params;

/// Search depth (3-ary tree ⇒ 3^DEPTH leaves per search).
const DEPTH: u32 = 7;

/// Builds the `crafty` stand-in.
pub fn build_crafty(params: &Params) -> Program {
    let searches = 8 * params.scale;
    let src = format!(
        r"
    li r9, 0xC4AF7        ; eval RNG state
    li r5, {searches}
    li r4, 0
game:
    li r1, {DEPTH}
    call search
    add r4, r4, r2
    trap 0x1
    addi r5, r5, -1
    cmpi r5, 0
    bne game
    halt

search:                   ; r1 = depth -> r2 = score; 3 children per node
    cmpi r1, 0
    bne srec
    ; leaf: pick one of eight evaluators (distinct call sites, so the
    ; return-target population is realistic)
    li r7, 0x10dcd
    mul r9, r9, r7
    addi r9, r9, 12345
    srli r7, r9, 13
    andi r7, r7, 7
    cmpi r7, 0
    beq leaf0
    cmpi r7, 1
    beq leaf1
    cmpi r7, 2
    beq leaf2
    cmpi r7, 3
    beq leaf3
    cmpi r7, 4
    beq leaf4
    cmpi r7, 5
    beq leaf5
    cmpi r7, 6
    beq leaf6
    call evaluate7
    ret
leaf0:
    call evaluate0
    ret
leaf1:
    call evaluate1
    ret
leaf2:
    call evaluate2
    ret
leaf3:
    call evaluate3
    ret
leaf4:
    call evaluate4
    ret
leaf5:
    call evaluate5
    ret
leaf6:
    call evaluate6
    ret
srec:
    push r1
    push r6
    li r6, 0
    lw r1, 4(sp)
    addi r1, r1, -1
    call search
    add r6, r6, r2
    lw r1, 4(sp)
    addi r1, r1, -1
    call search
    add r6, r6, r2
    lw r1, 4(sp)
    addi r1, r1, -1
    call search
    add r6, r6, r2
    srli r2, r6, 1        ; combine child scores
    addi r2, r2, 3
    pop r6
    pop r1
    ret

{{EVALS}}"
    );
    let mut evals = String::new();
    for e in 0..8 {
        evals.push_str(&format!(
            "evaluate{e}:              ; leaf evaluation variant {e}\n    li r7, 0x10dcd\n    mul r9, r9, r7\n    addi r9, r9, {}\n    srli r2, r9, {}\n    andi r2, r2, 0xff\n    ret\n",
            12000 + e * 13,
            16 + e
        ));
    }
    let src = src.replace("{EVALS}", &evals);
    let code = assemble(layout::APP_BASE, &src).expect("crafty assembles");
    Program::new("crafty", code, Vec::new())
}

/// Move types in the twolf annealer.
const MOVE_TYPES: usize = 16;

/// Builds the `twolf` stand-in.
pub fn build_twolf(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let table = data_base + 0x1000;
    let iters = 26_000 * params.scale;

    let mut src = String::new();
    src.push_str(&format!("    li r13, {table}\n"));
    for m in 0..MOVE_TYPES {
        src.push_str(&format!("    li r1, m{m}\n    sw r1, {}(r13)\n", m * 4));
    }
    src.push_str(&format!(
        r"
    li r9, 0x2001
    li r5, {iters}
    li r4, 0
anneal:
    li r7, 0x10dcd        ; pick a move type with the LCG
    mul r9, r9, r7
    addi r9, r9, 12345
    srli r7, r9, 18
    andi r7, r7, {mask}
    slli r7, r7, 2
    add r7, r7, r13
    lw r7, 0(r7)
    jr r7                 ; move-type dispatch
{{MOVES}}accept:
    addi r5, r5, -1
    cmpi r5, 0
    bne anneal
    trap 0x1
    halt
penalty:
    addi r4, r4, -7
    xori r4, r4, 0x3333
    ret
",
        mask = MOVE_TYPES - 1,
    ));
    let mut moves = String::new();
    for m in 0..MOVE_TYPES {
        let body = match m % 4 {
            0 => format!("    srli r6, r9, {}\n    xor r4, r4, r6\n", 4 + m % 12),
            1 => format!("    srli r6, r9, {}\n    add r4, r4, r6\n", 8 + m % 8),
            2 => format!(
                "    slli r6, r4, {0}\n    srli r7, r4, {1}\n    or r4, r6, r7\n",
                1 + m % 7,
                31 - m % 7
            ),
            _ => "    call penalty\n".to_string(),
        };
        moves.push_str(&format!("m{m}:\n{body}    jmp accept\n"));
    }
    let src = src.replace("{MOVES}", &moves);
    let code = assemble(layout::APP_BASE, &src).expect("twolf assembles");
    Program::new("twolf", code, Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn crafty_is_call_return_dominated() {
        let p = build_crafty(&Params::default());
        let r = reference::run(&p, 100_000_000).unwrap();
        // 3^7 leaves + internal nodes per search, 8 searches.
        assert!(r.returns > 20_000, "{}", r.returns);
        assert_eq!(r.indirect_jumps, 0);
        assert!(r.returns as f64 / r.instructions as f64 > 0.02);
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn twolf_dispatches_moves() {
        let p = build_twolf(&Params::default());
        let r = reference::run(&p, 100_000_000).unwrap();
        assert!(r.indirect_jumps >= 26_000);
        assert!(r.returns > 1000, "penalty calls: {}", r.returns);
        assert_ne!(r.checksum, 0);
    }
}
