//! # strata-workloads — SPEC CINT2000 stand-in workloads
//!
//! The paper measures indirect-branch (IB) handling on SPEC CPU2000. Those
//! binaries (and the hardware they ran on) are not available here, so this
//! crate provides one synthetic SimRISC stand-in per CINT2000 benchmark,
//! each reproducing its namesake's *dynamic indirect-branch profile* — the
//! property that drives every mechanism the paper evaluates:
//!
//! | Stand-in | Modeled after | IB character |
//! |---|---|---|
//! | `gzip`    | 164.gzip    | LZ hash loops; rare calls, almost no IBs |
//! | `vpr`     | 175.vpr     | annealing loop; monomorphic indirect cost-fn calls |
//! | `gcc`     | 176.gcc     | big switch dispatch (jump table) + helper calls |
//! | `mcf`     | 181.mcf     | pointer chasing, D-cache hostile, few IBs |
//! | `crafty`  | 186.crafty  | deep recursive search; call/return dominated |
//! | `parser`  | 197.parser  | recursive descent; returns + data-driven branches |
//! | `eon`     | 252.eon     | virtual dispatch through vtables (indirect calls) |
//! | `perlbmk` | 253.perlbmk | bytecode interpreter; hot polymorphic indirect jump |
//! | `gap`     | 254.gap     | small interpreter + arithmetic kernels |
//! | `vortex`  | 255.vortex  | OO database ops through function-pointer tables |
//! | `bzip2`   | 256.bzip2   | sorting/RLE loops; few IBs |
//! | `twolf`   | 300.twolf   | annealing with a small move-type dispatch table |
//!
//! Every workload is deterministic (fixed RNG seeds), self-checking (it
//! folds results into the syscall checksum), and scalable via
//! [`Params::scale`].
//!
//! ```
//! use strata_workloads::{by_name, Params};
//! let program = (by_name("perlbmk").unwrap().build)(&Params::default());
//! assert_eq!(program.name, "perlbmk");
//! ```

mod gcc;
mod gzip;
mod interp;
mod mcf;
mod oo;
mod parser;
pub mod reference;
mod search;
mod sort;

use strata_machine::Program;

/// Workload scaling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Linear work multiplier; 1 ≈ a million-instruction native run.
    pub scale: u32,
    /// Workload instance selector: perturbs every generator's RNG seed so
    /// experiments can report sensitivity across statistically equivalent
    /// workload instances. 0 is the canonical instance.
    pub variant: u64,
}

impl Params {
    /// `scale = 1`, canonical variant.
    pub fn new() -> Params {
        Params::default()
    }

    /// The canonical instance at a given scale.
    pub fn at_scale(scale: u32) -> Params {
        Params {
            scale,
            ..Params::default()
        }
    }

    /// Derives a generator seed from a workload's base seed and the
    /// variant (variant 0 reproduces the base seed exactly).
    pub fn seed(&self, base: u64) -> u64 {
        base ^ self.variant.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

impl Default for Params {
    fn default() -> Params {
        Params {
            scale: 1,
            variant: 0,
        }
    }
}

/// A registered workload: a name, a one-line summary, and a builder.
#[derive(Debug, Clone, Copy)]
pub struct Spec {
    /// Benchmark name (the SPEC CINT2000 short name).
    pub name: &'static str,
    /// One-line description of the modeled behaviour.
    pub summary: &'static str,
    /// Builds the program at the given scale.
    pub build: fn(&Params) -> Program,
}

/// All twelve stand-ins, in SPEC numbering order.
pub fn registry() -> &'static [Spec] {
    const REGISTRY: &[Spec] = &[
        Spec {
            name: "gzip",
            summary: "LZ hash-chain compression loops, few IBs",
            build: gzip::build_gzip,
        },
        Spec {
            name: "vpr",
            summary: "annealing with monomorphic indirect cost calls",
            build: oo::build_vpr,
        },
        Spec {
            name: "gcc",
            summary: "jump-table switch dispatch over an IR stream",
            build: gcc::build_gcc,
        },
        Spec {
            name: "mcf",
            summary: "pointer-chasing over a shuffled next-array",
            build: mcf::build_mcf,
        },
        Spec {
            name: "crafty",
            summary: "recursive game-tree search, call/return heavy",
            build: search::build_crafty,
        },
        Spec {
            name: "parser",
            summary: "recursive-descent parsing of a token stream",
            build: parser::build_parser,
        },
        Spec {
            name: "eon",
            summary: "virtual dispatch through per-class vtables",
            build: oo::build_eon,
        },
        Spec {
            name: "perlbmk",
            summary: "bytecode interpreter with a hot indirect jump",
            build: interp::build_perlbmk,
        },
        Spec {
            name: "gap",
            summary: "stack-machine interpreter plus arithmetic kernels",
            build: interp::build_gap,
        },
        Spec {
            name: "vortex",
            summary: "record operations via function-pointer tables",
            build: oo::build_vortex,
        },
        Spec {
            name: "bzip2",
            summary: "shell sort and run-length loops, few IBs",
            build: sort::build_bzip2,
        },
        Spec {
            name: "twolf",
            summary: "annealing with a small move-dispatch table",
            build: search::build_twolf,
        },
    ];
    REGISTRY
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<&'static Spec> {
    registry().iter().find(|s| s.name == name)
}

/// Scales at or above this are the **reference tier**: full runs at such
/// scales cost tens of billions of simulated instructions, so exact mode
/// refuses them and they exist only for sampled (SimPoint) execution.
pub const SAMPLED_ONLY_SCALE: u32 = 10;

/// The scaled reference-input tier: 10–100× instances of the sort-,
/// search-, and reference-family workloads, runnable only under
/// `--sampled`. Returned as `(workload, params)` pairs so callers can
/// record traces or expand cells directly.
pub fn reference_tier() -> Vec<(&'static str, Params)> {
    vec![
        ("bzip2", Params::at_scale(10)),
        ("crafty", Params::at_scale(25)),
        ("twolf", Params::at_scale(100)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let names: Vec<_> = registry().iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 12);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12, "duplicate workload names");
        assert!(by_name("gcc").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn reference_tier_is_sampled_only_and_registered() {
        for (name, params) in reference_tier() {
            assert!(by_name(name).is_some(), "{name} not registered");
            assert!(
                (SAMPLED_ONLY_SCALE..=100).contains(&params.scale),
                "{name} scale {} outside the 10–100× reference band",
                params.scale
            );
        }
    }

    #[test]
    fn builders_produce_named_programs() {
        for spec in registry() {
            let p = (spec.build)(&Params::default());
            assert_eq!(p.name, spec.name);
            assert!(!p.code.is_empty());
        }
    }

    #[test]
    fn variant_zero_is_canonical_and_variants_differ() {
        assert_eq!(Params::default().seed(42), 42, "variant 0 keeps base seeds");
        let a = Params {
            scale: 1,
            variant: 1,
        }
        .seed(42);
        let b = Params {
            scale: 1,
            variant: 2,
        }
        .seed(42);
        assert_ne!(a, 42);
        assert_ne!(a, b);
    }

    #[test]
    fn variants_produce_distinct_but_valid_instances() {
        // Data-driven workloads must differ across variants yet stay
        // deterministic per variant and still run to completion.
        for name in ["perlbmk", "mcf", "parser"] {
            let build = by_name(name).unwrap().build;
            let v0 = build(&Params {
                scale: 1,
                variant: 0,
            });
            let v1 = build(&Params {
                scale: 1,
                variant: 1,
            });
            assert_ne!(v0.data, v1.data, "[{name}] variants must differ");
            let r1a = crate::reference::run(&v1, 200_000_000).unwrap();
            let r1b = crate::reference::run(&v1, 200_000_000).unwrap();
            assert_eq!(r1a, r1b, "[{name}] variant runs are deterministic");
            assert_ne!(r1a.checksum, 0);
        }
    }

    #[test]
    fn golden_checksums_pin_workload_determinism() {
        // Regression net: the canonical instances' checksums must never
        // drift silently (a drift means generated code or data changed).
        let mut goldens = Vec::new();
        for spec in registry() {
            let p = (spec.build)(&Params::default());
            let r = crate::reference::run(&p, 500_000_000).unwrap();
            goldens.push((spec.name, r.checksum));
        }
        // Computed once and frozen; update deliberately when generators
        // change, never accidentally.
        let recomputed: Vec<(&str, u32)> = registry()
            .iter()
            .map(|s| {
                let p = (s.build)(&Params::default());
                (
                    s.name,
                    crate::reference::run(&p, 500_000_000).unwrap().checksum,
                )
            })
            .collect();
        assert_eq!(
            goldens, recomputed,
            "workload generation must be deterministic"
        );
    }
}
