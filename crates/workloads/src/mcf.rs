//! The `mcf` stand-in: pointer chasing through a shuffled successor array.
//! 181.mcf's network-simplex loops are memory-latency bound with few
//! indirect branches; under an SDT its slowdown is dominated by everything
//! *except* IB handling, making it a useful contrast point.

use strata_asm::assemble;
use strata_machine::{layout, Program};
use strata_stats::rng::SmallRng;

use crate::Params;

/// Nodes in the successor cycle (128 KiB of data — far beyond L1).
const NODES: usize = 32 * 1024;

/// Builds the `mcf` stand-in.
pub fn build_mcf(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let steps = 140_000 * params.scale;

    // A single-cycle permutation (Sattolo's algorithm) so the walk visits
    // every node before repeating — maximal cache hostility.
    let mut rng = SmallRng::seed_from_u64(params.seed(0x0181_0181_0181_0181));
    let mut next: Vec<u32> = (0..NODES as u32).collect();
    for i in (1..NODES).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    let data: Vec<u8> = next.iter().flat_map(|w| w.to_le_bytes()).collect();

    let src = format!(
        r"
    li r10, {data_base}
    li r11, 0               ; current node
    li r5, {steps}
    li r4, 0
walk:
    slli r7, r11, 2
    add r7, r7, r10
    lw r11, 0(r7)           ; chase the successor pointer
    add r4, r4, r11
    addi r5, r5, -1
    cmpi r5, 0
    bne walk
    trap 0x1
    halt
"
    );

    let code = assemble(layout::APP_BASE, &src).expect("mcf assembles");
    Program::new("mcf", code, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn mcf_is_pure_pointer_chasing() {
        let p = build_mcf(&Params::default());
        let r = reference::run(&p, 50_000_000).unwrap();
        assert!(r.instructions > 800_000);
        assert_eq!(r.indirect_branches(), 0);
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn successor_array_is_one_cycle() {
        let p = build_mcf(&Params::default());
        let next: Vec<u32> = p
            .data
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut seen = vec![false; NODES];
        let mut cur = 0u32;
        for _ in 0..NODES {
            assert!(!seen[cur as usize], "cycle shorter than NODES");
            seen[cur as usize] = true;
            cur = next[cur as usize];
        }
        assert_eq!(cur, 0, "walk returns to the start after NODES steps");
    }
}
