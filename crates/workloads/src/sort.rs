//! The `bzip2` stand-in: shell sort plus a run-length pass over the sorted
//! output. Like 256.bzip2's block sorting, the hot code is comparison
//! loops with dense conditional branches and essentially no indirect
//! branches.

use strata_asm::assemble;
use strata_machine::{layout, Program};
use strata_stats::rng::SmallRng;

use crate::Params;

/// Words to sort per pass.
const N: u32 = 2048;
/// Shell-sort gap sequence (Ciura-style, descending).
const GAPS: [u32; 8] = [701, 301, 132, 57, 23, 10, 4, 1];

/// Builds the `bzip2` stand-in.
pub fn build_bzip2(params: &Params) -> Program {
    let data_base = layout::APP_DATA_BASE;
    let work = data_base + 0x8000; // scratch copy sorted each pass
    let gaps = data_base + 0x4000;
    let passes = 2 * params.scale;

    let mut rng = SmallRng::seed_from_u64(params.seed(0x256B21));
    let mut data: Vec<u8> = Vec::new();
    for _ in 0..N {
        data.extend_from_slice(&rng.gen_range(0u32..0x1_0000).to_le_bytes());
    }
    // Gap sequence appended at +0x4000 via guest init instead: keep the
    // blob contiguous by writing gaps from code.

    let mut src = String::new();
    for (i, g) in GAPS.iter().enumerate() {
        src.push_str(&format!(
            "    li r1, {g}\n    li r2, {}\n    sw r1, 0(r2)\n",
            gaps + (i as u32) * 4
        ));
    }
    src.push_str(&format!(
        r"
    li r5, {passes}
    li r4, 0
pass:
    ; copy input -> work (the sort is in-place, input must stay pristine)
    li r10, {data_base}
    li r11, {work}
    li r12, {n}
copy:
    lw r7, 0(r10)
    sw r7, 0(r11)
    addi r10, r10, 4
    addi r11, r11, 4
    addi r12, r12, -1
    cmpi r12, 0
    bne copy

    ; shell sort over work[0..N]
    li r13, {gaps_base}   ; gap cursor
    li r14, {gaps_end}
gaploop:
    lw r9, 0(r13)         ; gap
    mov r1, r9            ; i = gap
iloop:
    cmpi r1, 0
    beq inext             ; unreachable guard
    li r7, {n}
    cmp r1, r7
    bgeu gapdone
    ; tmp = work[i]
    slli r6, r1, 2
    li r7, {work}
    add r6, r6, r7
    lw r2, 0(r6)          ; tmp
    mov r3, r1            ; j = i
jloop:
    cmp r3, r9
    bltu place            ; j < gap
    sub r6, r3, r9        ; j - gap
    slli r6, r6, 2
    li r7, {work}
    add r6, r6, r7
    lw r8, 0(r6)          ; work[j-gap]
    cmp r8, r2
    bgeu shift
    jmp place
shift:
    slli r6, r3, 2
    li r7, {work}
    add r6, r6, r7
    sub r6, r6, r9
    sub r6, r6, r9
    sub r6, r6, r9
    sub r6, r6, r9        ; &work[j-gap] (gap*4 subtracted)
    lw r8, 0(r6)
    slli r6, r3, 2
    add r6, r6, r7
    sw r8, 0(r6)          ; work[j] = work[j-gap]
    sub r3, r3, r9
    jmp jloop
place:
    slli r6, r3, 2
    li r7, {work}
    add r6, r6, r7
    sw r2, 0(r6)          ; work[j] = tmp
inext:
    addi r1, r1, 1
    jmp iloop
gapdone:
    addi r13, r13, 4
    cmp r13, r14
    bltu gaploop

    ; run-length pass over the sorted data
    li r10, {work}
    li r12, {n_minus_1}
    li r3, 0              ; runs
rle:
    lw r6, 0(r10)
    lw r7, 4(r10)
    cmp r6, r7
    bne newrun
    addi r3, r3, 1
newrun:
    addi r10, r10, 4
    addi r12, r12, -1
    cmpi r12, 0
    bne rle
    add r4, r4, r3
    ; fold a sample of the sorted output into the checksum
    li r10, {work}
    lw r6, 512(r10)
    add r4, r4, r6
    trap 0x1
    addi r5, r5, -1
    cmpi r5, 0
    bne pass
    halt
",
        n = N,
        n_minus_1 = N - 1,
        gaps_base = gaps,
        gaps_end = gaps + (GAPS.len() as u32) * 4,
        work = work,
    ));

    let code = assemble(layout::APP_BASE, &src).expect("bzip2 assembles");
    Program::new("bzip2", code, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn bzip2_sorts_and_has_no_indirect_branches() {
        let p = build_bzip2(&Params::default());
        let r = reference::run(&p, 200_000_000).unwrap();
        assert!(r.instructions > 300_000, "{}", r.instructions);
        assert_eq!(r.indirect_branches(), 0);
        assert_ne!(r.checksum, 0);
        assert_eq!(r, reference::run(&p, 200_000_000).unwrap());
    }

    #[test]
    fn sort_actually_sorts() {
        // Execute one pass on the machine and inspect the work buffer.
        use strata_machine::{Machine, NullObserver, StepOutcome};
        let p = build_bzip2(&Params::at_scale(1));
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        p.load(&mut m).unwrap();
        loop {
            match m.run(&mut NullObserver, 500_000_000).unwrap() {
                StepOutcome::Trap(_) => continue,
                StepOutcome::Halted => break,
                StepOutcome::Running => unreachable!(),
            }
        }
        let work = layout::APP_DATA_BASE + 0x8000;
        let mut prev = 0u32;
        for i in 0..N {
            let v = m.mem().read_u32(work + i * 4).unwrap();
            assert!(v >= prev, "work[{i}] = {v} < {prev}");
            prev = v;
        }
    }
}
