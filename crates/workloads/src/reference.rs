//! A functional (cost-model-free) reference runner used by workload tests
//! and by consumers that only need checksums and dynamic branch profiles.

use strata_isa::ControlKind;
use strata_machine::syscall::{SyscallState, SDT_TRAP_BASE};
use strata_machine::{
    layout, ExecutionObserver, Machine, MachineError, Program, RetireEvent, StepOutcome,
};

/// Result of a reference run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefRun {
    /// Syscall checksum.
    pub checksum: u32,
    /// Retired instructions.
    pub instructions: u64,
    /// Dynamic indirect jumps (`jr`/`jmem`).
    pub indirect_jumps: u64,
    /// Dynamic indirect calls.
    pub indirect_calls: u64,
    /// Dynamic returns.
    pub returns: u64,
    /// Dynamic direct calls.
    pub direct_calls: u64,
}

impl RefRun {
    /// All indirect branches (jumps + calls + returns).
    pub fn indirect_branches(&self) -> u64 {
        self.indirect_jumps + self.indirect_calls + self.returns
    }
}

#[derive(Default)]
struct Profile {
    instructions: u64,
    indirect_jumps: u64,
    indirect_calls: u64,
    returns: u64,
    direct_calls: u64,
}

impl ExecutionObserver for Profile {
    #[inline]
    fn on_retire(&mut self, ev: &RetireEvent) {
        self.instructions += 1;
        match ev.control.kind {
            ControlKind::Indirect => self.indirect_jumps += 1,
            ControlKind::Call if ev.control.indirect => self.indirect_calls += 1,
            ControlKind::Call => self.direct_calls += 1,
            ControlKind::Return => self.returns += 1,
            _ => {}
        }
    }
}

/// Runs `program` natively with no cost model, collecting its dynamic
/// branch profile.
///
/// # Errors
///
/// Propagates machine faults; fuel exhaustion surfaces as
/// [`MachineError::OutOfFuel`].
pub fn run(program: &Program, fuel: u64) -> Result<RefRun, MachineError> {
    let mut machine = Machine::new(layout::DEFAULT_MEM_BYTES);
    program.load(&mut machine)?;
    let mut syscalls = SyscallState::new();
    let mut profile = Profile::default();
    let mut used = 0u64;
    loop {
        let before = profile.instructions;
        match machine.run(&mut profile, fuel.saturating_sub(used))? {
            StepOutcome::Halted => break,
            StepOutcome::Trap(code) => {
                debug_assert!(code < SDT_TRAP_BASE, "workloads must not use SDT traps");
                syscalls.handle(code, &machine);
            }
            StepOutcome::Running => unreachable!(),
        }
        used += profile.instructions - before;
    }
    Ok(RefRun {
        checksum: syscalls.checksum(),
        instructions: profile.instructions,
        indirect_jumps: profile.indirect_jumps,
        indirect_calls: profile.indirect_calls,
        returns: profile.returns,
        direct_calls: profile.direct_calls,
    })
}
