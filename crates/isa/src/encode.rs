use crate::{Instr, Reg, MAX_ABS_ADDR, MAX_JUMP_TARGET};

// Opcode space, grouped by format. Kept `pub(crate)` — the numeric values
// are an implementation detail shared only with the decoder.
pub(crate) mod op {
    pub const NOP: u8 = 0x00;

    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const MUL: u8 = 0x03;
    pub const DIVU: u8 = 0x04;
    pub const REMU: u8 = 0x05;
    pub const AND: u8 = 0x06;
    pub const OR: u8 = 0x07;
    pub const XOR: u8 = 0x08;
    pub const SLL: u8 = 0x09;
    pub const SRL: u8 = 0x0A;
    pub const SRA: u8 = 0x0B;
    pub const MOV: u8 = 0x0C;

    pub const ADDI: u8 = 0x10;
    pub const ANDI: u8 = 0x11;
    pub const ORI: u8 = 0x12;
    pub const XORI: u8 = 0x13;
    pub const SLLI: u8 = 0x14;
    pub const SRLI: u8 = 0x15;
    pub const SRAI: u8 = 0x16;
    pub const LUI: u8 = 0x17;

    pub const LW: u8 = 0x20;
    pub const SW: u8 = 0x21;
    pub const LB: u8 = 0x22;
    pub const LBU: u8 = 0x23;
    pub const SB: u8 = 0x24;
    pub const LWA: u8 = 0x25;
    pub const SWA: u8 = 0x26;
    pub const PUSH: u8 = 0x27;
    pub const POP: u8 = 0x28;
    pub const PUSHF: u8 = 0x29;
    pub const POPF: u8 = 0x2A;

    pub const CMP: u8 = 0x30;
    pub const CMPI: u8 = 0x31;
    pub const BEQ: u8 = 0x32;
    pub const BNE: u8 = 0x33;
    pub const BLT: u8 = 0x34;
    pub const BGE: u8 = 0x35;
    pub const BLTU: u8 = 0x36;
    pub const BGEU: u8 = 0x37;

    pub const JMP: u8 = 0x40;
    pub const CALL: u8 = 0x41;
    pub const JR: u8 = 0x42;
    pub const CALLR: u8 = 0x43;
    pub const RET: u8 = 0x44;
    pub const JMEM: u8 = 0x45;

    pub const TRAP: u8 = 0x50;
    pub const HALT: u8 = 0x51;
}

#[inline]
fn r_type(opcode: u8, rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    ((opcode as u32) << 24)
        | ((rd.index() as u32) << 20)
        | ((rs1.index() as u32) << 16)
        | ((rs2.index() as u32) << 12)
}

#[inline]
fn i_type(opcode: u8, rd: Reg, rs1: Reg, imm: u16) -> u32 {
    ((opcode as u32) << 24)
        | ((rd.index() as u32) << 20)
        | ((rs1.index() as u32) << 16)
        | (imm as u32)
}

#[inline]
fn abs_type(opcode: u8, rd: Reg, addr: u32) -> u32 {
    assert!(
        addr <= MAX_ABS_ADDR,
        "absolute address {addr:#x} exceeds the 20-bit lwa/swa range"
    );
    assert!(
        addr.is_multiple_of(4),
        "absolute address {addr:#x} is not word aligned"
    );
    ((opcode as u32) << 24) | ((rd.index() as u32) << 20) | addr
}

#[inline]
fn j_type(opcode: u8, target: u32) -> u32 {
    assert!(
        target <= MAX_JUMP_TARGET,
        "jump target {target:#x} exceeds the 24-bit word-address range"
    );
    assert!(
        target.is_multiple_of(4),
        "jump target {target:#x} is not word aligned"
    );
    ((opcode as u32) << 24) | (target >> 2)
}

/// Encodes an instruction into its 32-bit machine word.
///
/// The encoding is lossless: [`crate::decode`] recovers exactly the same
/// [`Instr`] value for every encodable instruction.
///
/// # Panics
///
/// Panics if the instruction carries an immediate outside its encodable
/// range — a shift amount of 32 or more, an unaligned or out-of-range jump
/// target (see [`MAX_JUMP_TARGET`]), or an unaligned or out-of-range
/// `lwa`/`swa` address (see [`MAX_ABS_ADDR`]). These are programmer errors
/// in code generators, not runtime conditions.
///
/// ```
/// use strata_isa::{encode, decode, Instr, Reg};
/// let i = Instr::Lui { rd: Reg::R4, imm: 0xBEEF };
/// assert_eq!(decode(encode(&i)).unwrap(), i);
/// ```
pub fn encode(instr: &Instr) -> u32 {
    use Instr::*;
    match *instr {
        Add { rd, rs1, rs2 } => r_type(op::ADD, rd, rs1, rs2),
        Sub { rd, rs1, rs2 } => r_type(op::SUB, rd, rs1, rs2),
        Mul { rd, rs1, rs2 } => r_type(op::MUL, rd, rs1, rs2),
        Divu { rd, rs1, rs2 } => r_type(op::DIVU, rd, rs1, rs2),
        Remu { rd, rs1, rs2 } => r_type(op::REMU, rd, rs1, rs2),
        And { rd, rs1, rs2 } => r_type(op::AND, rd, rs1, rs2),
        Or { rd, rs1, rs2 } => r_type(op::OR, rd, rs1, rs2),
        Xor { rd, rs1, rs2 } => r_type(op::XOR, rd, rs1, rs2),
        Sll { rd, rs1, rs2 } => r_type(op::SLL, rd, rs1, rs2),
        Srl { rd, rs1, rs2 } => r_type(op::SRL, rd, rs1, rs2),
        Sra { rd, rs1, rs2 } => r_type(op::SRA, rd, rs1, rs2),
        Mov { rd, rs } => r_type(op::MOV, rd, rs, Reg::R0),

        Addi { rd, rs1, imm } => i_type(op::ADDI, rd, rs1, imm as u16),
        Andi { rd, rs1, imm } => i_type(op::ANDI, rd, rs1, imm),
        Ori { rd, rs1, imm } => i_type(op::ORI, rd, rs1, imm),
        Xori { rd, rs1, imm } => i_type(op::XORI, rd, rs1, imm),
        Slli { rd, rs1, shamt } => shift_imm(op::SLLI, rd, rs1, shamt),
        Srli { rd, rs1, shamt } => shift_imm(op::SRLI, rd, rs1, shamt),
        Srai { rd, rs1, shamt } => shift_imm(op::SRAI, rd, rs1, shamt),
        Lui { rd, imm } => i_type(op::LUI, rd, Reg::R0, imm),

        Lw { rd, rs1, off } => i_type(op::LW, rd, rs1, off as u16),
        Sw { rs2, rs1, off } => i_type(op::SW, rs2, rs1, off as u16),
        Lb { rd, rs1, off } => i_type(op::LB, rd, rs1, off as u16),
        Lbu { rd, rs1, off } => i_type(op::LBU, rd, rs1, off as u16),
        Sb { rs2, rs1, off } => i_type(op::SB, rs2, rs1, off as u16),
        Lwa { rd, addr } => abs_type(op::LWA, rd, addr),
        Swa { rs, addr } => abs_type(op::SWA, rs, addr),
        Push { rs } => r_type(op::PUSH, rs, Reg::R0, Reg::R0),
        Pop { rd } => r_type(op::POP, rd, Reg::R0, Reg::R0),
        Pushf => (op::PUSHF as u32) << 24,
        Popf => (op::POPF as u32) << 24,

        Cmp { rs1, rs2 } => r_type(op::CMP, Reg::R0, rs1, rs2),
        Cmpi { rs1, imm } => i_type(op::CMPI, Reg::R0, rs1, imm as u16),
        Beq { off } => i_type(op::BEQ, Reg::R0, Reg::R0, off as u16),
        Bne { off } => i_type(op::BNE, Reg::R0, Reg::R0, off as u16),
        Blt { off } => i_type(op::BLT, Reg::R0, Reg::R0, off as u16),
        Bge { off } => i_type(op::BGE, Reg::R0, Reg::R0, off as u16),
        Bltu { off } => i_type(op::BLTU, Reg::R0, Reg::R0, off as u16),
        Bgeu { off } => i_type(op::BGEU, Reg::R0, Reg::R0, off as u16),

        Jmp { target } => j_type(op::JMP, target),
        Call { target } => j_type(op::CALL, target),
        Jr { rs } => r_type(op::JR, Reg::R0, rs, Reg::R0),
        Callr { rs } => r_type(op::CALLR, Reg::R0, rs, Reg::R0),
        Ret => (op::RET as u32) << 24,
        Jmem { addr } => j_type(op::JMEM, addr),

        Trap { code } => i_type(op::TRAP, Reg::R0, Reg::R0, code),
        Halt => (op::HALT as u32) << 24,
        Nop => (op::NOP as u32) << 24,
    }
}

#[inline]
fn shift_imm(opcode: u8, rd: Reg, rs1: Reg, shamt: u8) -> u32 {
    assert!(
        shamt < 32,
        "shift amount {shamt} out of range (must be 0..32)"
    );
    i_type(opcode, rd, rs1, shamt as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "shift amount")]
    fn shift_out_of_range_panics() {
        encode(&Instr::Slli {
            rd: Reg::R1,
            rs1: Reg::R1,
            shamt: 32,
        });
    }

    #[test]
    #[should_panic(expected = "not word aligned")]
    fn unaligned_jump_panics() {
        encode(&Instr::Jmp { target: 0x102 });
    }

    #[test]
    #[should_panic(expected = "24-bit")]
    fn oversized_jump_panics() {
        encode(&Instr::Jmp {
            target: MAX_JUMP_TARGET + 5,
        });
    }

    #[test]
    #[should_panic(expected = "20-bit")]
    fn oversized_abs_panics() {
        encode(&Instr::Lwa {
            rd: Reg::R1,
            addr: MAX_ABS_ADDR + 5,
        });
    }

    #[test]
    fn opcode_field_is_high_byte() {
        let w = encode(&Instr::Halt);
        assert_eq!(w >> 24, op::HALT as u32);
    }
}
