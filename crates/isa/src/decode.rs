use std::fmt;

use crate::encode::op;
use crate::{Instr, Reg};

/// Error returned by [`decode`] for malformed machine words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name any SimRISC instruction.
    InvalidOpcode(u8),
    /// A shift-immediate instruction carried a shift amount of 32 or more.
    InvalidShiftAmount(u16),
    /// An `lwa`/`swa` word carried an absolute address that is not 4-byte
    /// aligned.
    UnalignedAddress(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidOpcode(opc) => write!(f, "invalid opcode {opc:#04x}"),
            DecodeError::InvalidShiftAmount(s) => {
                write!(f, "invalid shift amount {s} (must be 0..32)")
            }
            DecodeError::UnalignedAddress(a) => {
                write!(f, "absolute address {a:#x} is not word aligned")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a 32-bit machine word into an [`Instr`].
///
/// # Errors
///
/// Returns [`DecodeError::InvalidOpcode`] for unknown opcodes and
/// [`DecodeError::InvalidShiftAmount`] for `slli`/`srli`/`srai` words with a
/// shift amount of 32 or more.
///
/// ```
/// use strata_isa::{decode, DecodeError};
/// assert_eq!(decode(0xFF00_0000), Err(DecodeError::InvalidOpcode(0xFF)));
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let opcode = (word >> 24) as u8;
    let rd = Reg::from_bits(word >> 20);
    let rs1 = Reg::from_bits(word >> 16);
    let rs2 = Reg::from_bits(word >> 12);
    let imm = (word & 0xFFFF) as u16;
    let simm = imm as i16;
    let abs = word & 0xF_FFFF;
    let jtarget = (word & 0xFF_FFFF) << 2;

    let instr = match opcode {
        op::NOP => Instr::Nop,

        op::ADD => Instr::Add { rd, rs1, rs2 },
        op::SUB => Instr::Sub { rd, rs1, rs2 },
        op::MUL => Instr::Mul { rd, rs1, rs2 },
        op::DIVU => Instr::Divu { rd, rs1, rs2 },
        op::REMU => Instr::Remu { rd, rs1, rs2 },
        op::AND => Instr::And { rd, rs1, rs2 },
        op::OR => Instr::Or { rd, rs1, rs2 },
        op::XOR => Instr::Xor { rd, rs1, rs2 },
        op::SLL => Instr::Sll { rd, rs1, rs2 },
        op::SRL => Instr::Srl { rd, rs1, rs2 },
        op::SRA => Instr::Sra { rd, rs1, rs2 },
        op::MOV => Instr::Mov { rd, rs: rs1 },

        op::ADDI => Instr::Addi { rd, rs1, imm: simm },
        op::ANDI => Instr::Andi { rd, rs1, imm },
        op::ORI => Instr::Ori { rd, rs1, imm },
        op::XORI => Instr::Xori { rd, rs1, imm },
        op::SLLI => Instr::Slli {
            rd,
            rs1,
            shamt: shamt(imm)?,
        },
        op::SRLI => Instr::Srli {
            rd,
            rs1,
            shamt: shamt(imm)?,
        },
        op::SRAI => Instr::Srai {
            rd,
            rs1,
            shamt: shamt(imm)?,
        },
        op::LUI => Instr::Lui { rd, imm },

        op::LW => Instr::Lw { rd, rs1, off: simm },
        op::SW => Instr::Sw {
            rs2: rd,
            rs1,
            off: simm,
        },
        op::LB => Instr::Lb { rd, rs1, off: simm },
        op::LBU => Instr::Lbu { rd, rs1, off: simm },
        op::SB => Instr::Sb {
            rs2: rd,
            rs1,
            off: simm,
        },
        op::LWA => Instr::Lwa {
            rd,
            addr: aligned(abs)?,
        },
        op::SWA => Instr::Swa {
            rs: rd,
            addr: aligned(abs)?,
        },
        op::PUSH => Instr::Push { rs: rd },
        op::POP => Instr::Pop { rd },
        op::PUSHF => Instr::Pushf,
        op::POPF => Instr::Popf,

        op::CMP => Instr::Cmp { rs1, rs2 },
        op::CMPI => Instr::Cmpi { rs1, imm: simm },
        op::BEQ => Instr::Beq { off: simm },
        op::BNE => Instr::Bne { off: simm },
        op::BLT => Instr::Blt { off: simm },
        op::BGE => Instr::Bge { off: simm },
        op::BLTU => Instr::Bltu { off: simm },
        op::BGEU => Instr::Bgeu { off: simm },

        op::JMP => Instr::Jmp { target: jtarget },
        op::CALL => Instr::Call { target: jtarget },
        op::JR => Instr::Jr { rs: rs1 },
        op::CALLR => Instr::Callr { rs: rs1 },
        op::RET => Instr::Ret,
        op::JMEM => Instr::Jmem { addr: jtarget },

        op::TRAP => Instr::Trap { code: imm },
        op::HALT => Instr::Halt,

        other => return Err(DecodeError::InvalidOpcode(other)),
    };
    Ok(instr)
}

#[inline]
fn aligned(addr: u32) -> Result<u32, DecodeError> {
    if addr.is_multiple_of(4) {
        Ok(addr)
    } else {
        Err(DecodeError::UnalignedAddress(addr))
    }
}

#[inline]
fn shamt(imm: u16) -> Result<u8, DecodeError> {
    if imm < 32 {
        Ok(imm as u8)
    } else {
        Err(DecodeError::InvalidShiftAmount(imm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    fn sample_instrs() -> Vec<Instr> {
        use Instr::*;
        let r = |i: u8| Reg::try_from(i).unwrap();
        vec![
            Nop,
            Halt,
            Ret,
            Pushf,
            Popf,
            Add {
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            },
            Sub {
                rd: r(15),
                rs1: r(0),
                rs2: r(7),
            },
            Mul {
                rd: r(4),
                rs1: r(4),
                rs2: r(4),
            },
            Divu {
                rd: r(5),
                rs1: r(6),
                rs2: r(7),
            },
            Remu {
                rd: r(8),
                rs1: r(9),
                rs2: r(10),
            },
            And {
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Or {
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Xor {
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Sll {
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Srl {
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Sra {
                rd: r(1),
                rs1: r(1),
                rs2: r(2),
            },
            Mov {
                rd: r(3),
                rs: r(12),
            },
            Addi {
                rd: r(2),
                rs1: r(3),
                imm: -32768,
            },
            Addi {
                rd: r(2),
                rs1: r(3),
                imm: 32767,
            },
            Andi {
                rd: r(2),
                rs1: r(3),
                imm: 0xFFFF,
            },
            Ori {
                rd: r(2),
                rs1: r(3),
                imm: 0xABCD,
            },
            Xori {
                rd: r(2),
                rs1: r(3),
                imm: 1,
            },
            Slli {
                rd: r(2),
                rs1: r(3),
                shamt: 31,
            },
            Srli {
                rd: r(2),
                rs1: r(3),
                shamt: 0,
            },
            Srai {
                rd: r(2),
                rs1: r(3),
                shamt: 16,
            },
            Lui {
                rd: r(9),
                imm: 0xDEAD,
            },
            Lw {
                rd: r(1),
                rs1: r(15),
                off: -4,
            },
            Sw {
                rs2: r(1),
                rs1: r(15),
                off: 8,
            },
            Lb {
                rd: r(1),
                rs1: r(2),
                off: 3,
            },
            Lbu {
                rd: r(1),
                rs1: r(2),
                off: -1,
            },
            Sb {
                rs2: r(1),
                rs1: r(2),
                off: 0,
            },
            Lwa {
                rd: r(1),
                addr: 0xF_FFFC,
            },
            Swa {
                rs: r(14),
                addr: 0x100,
            },
            Push { rs: r(7) },
            Pop { rd: r(8) },
            Cmp {
                rs1: r(1),
                rs2: r(2),
            },
            Cmpi { rs1: r(1), imm: -7 },
            Beq { off: -100 },
            Bne { off: 100 },
            Blt { off: 0 },
            Bge { off: 1 },
            Bltu { off: -1 },
            Bgeu { off: 32767 },
            Jmp { target: 0x10_0000 },
            Call { target: 0x20_0004 },
            Jr { rs: r(11) },
            Callr { rs: r(12) },
            Jmem { addr: 0x104 },
            Trap { code: 0xF001 },
        ]
    }

    #[test]
    fn exhaustive_roundtrip() {
        for instr in sample_instrs() {
            let word = encode(&instr);
            assert_eq!(decode(word), Ok(instr), "word {word:#010x}");
        }
    }

    #[test]
    fn invalid_opcode() {
        assert_eq!(decode(0xE100_0000), Err(DecodeError::InvalidOpcode(0xE1)));
    }

    #[test]
    fn invalid_shift() {
        // Hand-build an slli word with shamt = 40.
        let word = ((op::SLLI as u32) << 24) | (1 << 20) | (1 << 16) | 40;
        assert_eq!(decode(word), Err(DecodeError::InvalidShiftAmount(40)));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DecodeError::InvalidOpcode(0xE1).to_string(),
            "invalid opcode 0xe1"
        );
        assert_eq!(
            DecodeError::InvalidShiftAmount(40).to_string(),
            "invalid shift amount 40 (must be 0..32)"
        );
    }
}
