use crate::Instr;

/// Cost-model classification of an instruction.
///
/// Architecture models ([`strata-arch`](https://example.invalid)) assign a
/// base cycle cost per class; the classes therefore partition the ISA by
/// *microarchitectural behaviour*, not by encoding format. `Push`/`Pop` and
/// `Lwa`/`Swa` classify as stores/loads because that is what they do to the
/// memory pipeline, while `Pushf`/`Popf` get their own classes because flags
/// save/restore cost is one of the architecture-dependent quantities the
/// paper evaluates (the x86 `pushf` tax).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Simple integer ALU operation, register or immediate (incl. `cmp`,
    /// `mov`, `lui`).
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide / remainder.
    Div,
    /// Any load from memory (`lw`, `lb`, `lbu`, `lwa`, `pop`).
    Load,
    /// Any store to memory (`sw`, `sb`, `swa`, `push`).
    Store,
    /// Conditional branch on flags.
    CondBranch,
    /// Direct unconditional jump.
    DirectJump,
    /// Direct call (pushes the return address).
    DirectCall,
    /// Indirect jump through a register or memory slot (`jr`, `jmem`).
    IndirectJump,
    /// Indirect call through a register.
    IndirectCall,
    /// Return (pop + indirect jump; eligible for return-address-stack
    /// prediction).
    Return,
    /// Flags save (`pushf`).
    FlagsSave,
    /// Flags restore (`popf`).
    FlagsRestore,
    /// Host upcall (`trap`) — carries the architecture's kernel/runtime
    /// crossing cost.
    Trap,
    /// `halt` / `nop`.
    Other,
}

impl InstrClass {
    /// Number of distinct classes (the length of [`InstrClass::ALL`]).
    pub const COUNT: usize = 15;

    /// Every class, in discriminant order — `ALL[c.index()] == c`.
    /// Cost models use this to build dense per-class lookup tables.
    pub const ALL: [InstrClass; InstrClass::COUNT] = [
        InstrClass::Alu,
        InstrClass::Mul,
        InstrClass::Div,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::CondBranch,
        InstrClass::DirectJump,
        InstrClass::DirectCall,
        InstrClass::IndirectJump,
        InstrClass::IndirectCall,
        InstrClass::Return,
        InstrClass::FlagsSave,
        InstrClass::FlagsRestore,
        InstrClass::Trap,
        InstrClass::Other,
    ];

    /// The class's dense index in `0..COUNT`, for table-driven costing.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// How an instruction transfers control, as seen by branch predictors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlKind {
    /// Falls through to the next instruction.
    None,
    /// Conditional branch (predicted by the conditional predictor).
    Conditional,
    /// Direct jump or call: target is a constant, effectively free to
    /// predict.
    Direct,
    /// Pushes a return address (direct or indirect call) — feeds the
    /// return-address stack.
    Call,
    /// Indirect jump/call: target predicted by the BTB.
    Indirect,
    /// Return: predicted by the return-address stack.
    Return,
}

impl Instr {
    /// Returns the cost-model class of this instruction.
    ///
    /// ```
    /// use strata_isa::{Instr, InstrClass, Reg};
    /// assert_eq!(Instr::Pushf.class(), InstrClass::FlagsSave);
    /// assert_eq!(Instr::Pop { rd: Reg::R1 }.class(), InstrClass::Load);
    /// assert_eq!(Instr::Jmem { addr: 0x100 }.class(), InstrClass::IndirectJump);
    /// ```
    pub fn class(&self) -> InstrClass {
        use Instr::*;
        match self {
            Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Sll { .. }
            | Srl { .. }
            | Sra { .. }
            | Mov { .. }
            | Addi { .. }
            | Andi { .. }
            | Ori { .. }
            | Xori { .. }
            | Slli { .. }
            | Srli { .. }
            | Srai { .. }
            | Lui { .. }
            | Cmp { .. }
            | Cmpi { .. } => InstrClass::Alu,
            Mul { .. } => InstrClass::Mul,
            Divu { .. } | Remu { .. } => InstrClass::Div,
            Lw { .. } | Lb { .. } | Lbu { .. } | Lwa { .. } | Pop { .. } => InstrClass::Load,
            Sw { .. } | Sb { .. } | Swa { .. } | Push { .. } => InstrClass::Store,
            Pushf => InstrClass::FlagsSave,
            Popf => InstrClass::FlagsRestore,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
                InstrClass::CondBranch
            }
            Jmp { .. } => InstrClass::DirectJump,
            Call { .. } => InstrClass::DirectCall,
            Jr { .. } | Jmem { .. } => InstrClass::IndirectJump,
            Callr { .. } => InstrClass::IndirectCall,
            Ret => InstrClass::Return,
            Trap { .. } => InstrClass::Trap,
            Halt | Nop => InstrClass::Other,
        }
    }

    /// Returns how the instruction appears to branch-prediction hardware.
    ///
    /// ```
    /// use strata_isa::{ControlKind, Instr, Reg};
    /// assert_eq!(Instr::Callr { rs: Reg::R4 }.control_kind(), ControlKind::Call);
    /// assert_eq!(Instr::Jr { rs: Reg::R4 }.control_kind(), ControlKind::Indirect);
    /// assert_eq!(Instr::Ret.control_kind(), ControlKind::Return);
    /// ```
    pub fn control_kind(&self) -> ControlKind {
        use Instr::*;
        match self {
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
                ControlKind::Conditional
            }
            Jmp { .. } => ControlKind::Direct,
            Call { .. } | Callr { .. } => ControlKind::Call,
            Jr { .. } | Jmem { .. } => ControlKind::Indirect,
            Ret => ControlKind::Return,
            _ => ControlKind::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn classes_cover_memory_ops() {
        assert_eq!(Instr::Push { rs: Reg::R1 }.class(), InstrClass::Store);
        assert_eq!(
            Instr::Lwa {
                rd: Reg::R1,
                addr: 0x100
            }
            .class(),
            InstrClass::Load
        );
        assert_eq!(
            Instr::Swa {
                rs: Reg::R1,
                addr: 0x100
            }
            .class(),
            InstrClass::Store
        );
        assert_eq!(
            Instr::Sb {
                rs2: Reg::R1,
                rs1: Reg::R2,
                off: 0
            }
            .class(),
            InstrClass::Store
        );
    }

    #[test]
    fn control_kinds() {
        assert_eq!(Instr::Jmp { target: 0 }.control_kind(), ControlKind::Direct);
        assert_eq!(Instr::Call { target: 0 }.control_kind(), ControlKind::Call);
        assert_eq!(
            Instr::Beq { off: 0 }.control_kind(),
            ControlKind::Conditional
        );
        assert_eq!(Instr::Nop.control_kind(), ControlKind::None);
        assert_eq!(Instr::Trap { code: 0 }.control_kind(), ControlKind::None);
        assert_eq!(
            Instr::Jmem { addr: 0x100 }.control_kind(),
            ControlKind::Indirect
        );
    }

    #[test]
    fn flags_ops_have_dedicated_classes() {
        assert_eq!(Instr::Pushf.class(), InstrClass::FlagsSave);
        assert_eq!(Instr::Popf.class(), InstrClass::FlagsRestore);
    }

    #[test]
    fn all_indexes_are_dense_and_consistent() {
        for (i, class) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i, "{class:?}");
        }
    }
}
