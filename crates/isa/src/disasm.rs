use std::fmt;

use crate::Instr;

/// The `Display` implementation renders canonical assembly syntax — the same
/// syntax accepted by the `strata-asm` text assembler.
///
/// ```
/// use strata_isa::{Instr, Reg};
/// let i = Instr::Addi { rd: Reg::R1, rs1: Reg::SP, imm: -4 };
/// assert_eq!(i.to_string(), "addi r1, sp, -4");
/// ```
impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            Add { rd, rs1, rs2 } => write!(f, "add {rd}, {rs1}, {rs2}"),
            Sub { rd, rs1, rs2 } => write!(f, "sub {rd}, {rs1}, {rs2}"),
            Mul { rd, rs1, rs2 } => write!(f, "mul {rd}, {rs1}, {rs2}"),
            Divu { rd, rs1, rs2 } => write!(f, "divu {rd}, {rs1}, {rs2}"),
            Remu { rd, rs1, rs2 } => write!(f, "remu {rd}, {rs1}, {rs2}"),
            And { rd, rs1, rs2 } => write!(f, "and {rd}, {rs1}, {rs2}"),
            Or { rd, rs1, rs2 } => write!(f, "or {rd}, {rs1}, {rs2}"),
            Xor { rd, rs1, rs2 } => write!(f, "xor {rd}, {rs1}, {rs2}"),
            Sll { rd, rs1, rs2 } => write!(f, "sll {rd}, {rs1}, {rs2}"),
            Srl { rd, rs1, rs2 } => write!(f, "srl {rd}, {rs1}, {rs2}"),
            Sra { rd, rs1, rs2 } => write!(f, "sra {rd}, {rs1}, {rs2}"),
            Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Addi { rd, rs1, imm } => write!(f, "addi {rd}, {rs1}, {imm}"),
            Andi { rd, rs1, imm } => write!(f, "andi {rd}, {rs1}, {imm:#x}"),
            Ori { rd, rs1, imm } => write!(f, "ori {rd}, {rs1}, {imm:#x}"),
            Xori { rd, rs1, imm } => write!(f, "xori {rd}, {rs1}, {imm:#x}"),
            Slli { rd, rs1, shamt } => write!(f, "slli {rd}, {rs1}, {shamt}"),
            Srli { rd, rs1, shamt } => write!(f, "srli {rd}, {rs1}, {shamt}"),
            Srai { rd, rs1, shamt } => write!(f, "srai {rd}, {rs1}, {shamt}"),
            Lui { rd, imm } => write!(f, "lui {rd}, {imm:#x}"),
            Lw { rd, rs1, off } => write!(f, "lw {rd}, {off}({rs1})"),
            Sw { rs2, rs1, off } => write!(f, "sw {rs2}, {off}({rs1})"),
            Lb { rd, rs1, off } => write!(f, "lb {rd}, {off}({rs1})"),
            Lbu { rd, rs1, off } => write!(f, "lbu {rd}, {off}({rs1})"),
            Sb { rs2, rs1, off } => write!(f, "sb {rs2}, {off}({rs1})"),
            Lwa { rd, addr } => write!(f, "lwa {rd}, [{addr:#x}]"),
            Swa { rs, addr } => write!(f, "swa {rs}, [{addr:#x}]"),
            Push { rs } => write!(f, "push {rs}"),
            Pop { rd } => write!(f, "pop {rd}"),
            Pushf => write!(f, "pushf"),
            Popf => write!(f, "popf"),
            Cmp { rs1, rs2 } => write!(f, "cmp {rs1}, {rs2}"),
            Cmpi { rs1, imm } => write!(f, "cmpi {rs1}, {imm}"),
            Beq { off } => write!(f, "beq {off}"),
            Bne { off } => write!(f, "bne {off}"),
            Blt { off } => write!(f, "blt {off}"),
            Bge { off } => write!(f, "bge {off}"),
            Bltu { off } => write!(f, "bltu {off}"),
            Bgeu { off } => write!(f, "bgeu {off}"),
            Jmp { target } => write!(f, "jmp {target:#x}"),
            Call { target } => write!(f, "call {target:#x}"),
            Jr { rs } => write!(f, "jr {rs}"),
            Callr { rs } => write!(f, "callr {rs}"),
            Ret => write!(f, "ret"),
            Jmem { addr } => write!(f, "jmem [{addr:#x}]"),
            Trap { code } => write!(f, "trap {code:#x}"),
            Halt => write!(f, "halt"),
            Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Instr, Reg};

    #[test]
    fn representative_syntax() {
        assert_eq!(
            Instr::Lw {
                rd: Reg::R2,
                rs1: Reg::SP,
                off: -8
            }
            .to_string(),
            "lw r2, -8(sp)"
        );
        assert_eq!(Instr::Jmem { addr: 0x104 }.to_string(), "jmem [0x104]");
        assert_eq!(Instr::Trap { code: 0xF001 }.to_string(), "trap 0xf001");
        assert_eq!(Instr::Beq { off: -3 }.to_string(), "beq -3");
        assert_eq!(
            Instr::Lwa {
                rd: Reg::R1,
                addr: 0x200
            }
            .to_string(),
            "lwa r1, [0x200]"
        );
    }

    #[test]
    fn never_empty() {
        // C-DEBUG-NONEMPTY analogue for Display.
        assert!(!Instr::Nop.to_string().is_empty());
        assert!(!Instr::Halt.to_string().is_empty());
    }
}
