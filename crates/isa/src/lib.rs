//! # strata-isa — the SimRISC instruction set
//!
//! SimRISC is a 32-bit, fixed-width (4-byte) RISC instruction set designed as
//! the guest architecture for the `strata` software-dynamic-translation (SDT)
//! laboratory. It is deliberately rich enough to express, as *real executed
//! instructions*, every code sequence an SDT emits when handling indirect
//! branches:
//!
//! * hashing a branch target (`srli`/`andi`/`slli`),
//! * probing translation tables (`lui`+`add`+`lw`),
//! * tag compares and chained conditional branches (`cmp`/`bne`),
//! * register spills to an absolute save area (`lwa`/`swa`),
//! * flags save/restore around lookup code (`pushf`/`popf`), and
//! * the final transfer through a memory slot (`jmem`), mirroring the x86
//!   `jmp [mem]` idiom used by indirect-branch translation caches.
//!
//! The ISA has 16 general-purpose registers ([`Reg`]), with `r15` serving as
//! the stack pointer by software convention ([`Reg::SP`]). Calls push the
//! return address on the stack and `ret` pops it — this stack-based
//! call/return convention is what makes *return caches* and *fast returns*
//! (the mechanisms evaluated by Hiser et al., CGO 2007) directly expressible.
//!
//! ## Example
//!
//! ```
//! use strata_isa::{Instr, Reg, encode, decode};
//!
//! let instr = Instr::Addi { rd: Reg::R1, rs1: Reg::R2, imm: -4 };
//! let word = encode(&instr);
//! assert_eq!(decode(word).unwrap(), instr);
//! ```

mod class;
mod decode;
mod disasm;
mod encode;
mod instr;
mod reg;

pub use class::{ControlKind, InstrClass};
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use instr::{Flags, Instr};
pub use reg::Reg;

/// Size in bytes of every SimRISC instruction.
pub const INSTR_BYTES: u32 = 4;

/// Maximum byte address expressible by a `jmp`/`call`/`jmem` 24-bit word
/// immediate (64 MiB).
pub const MAX_JUMP_TARGET: u32 = (1 << 24) * INSTR_BYTES - 1;

/// Maximum byte address expressible by the 20-bit absolute `lwa`/`swa`
/// addressing mode (1 MiB). The SDT keeps its register save area below this
/// boundary so spill code needs no free base register.
pub const MAX_ABS_ADDR: u32 = (1 << 20) - 1;
