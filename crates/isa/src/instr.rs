use crate::Reg;

/// A decoded SimRISC instruction.
///
/// All instructions occupy exactly four bytes. Branch offsets (`Beq` etc.)
/// are signed *word* offsets relative to the instruction following the
/// branch: the branch target is `pc + 4 + off * 4`. Jump targets
/// (`Jmp`/`Call`/`Jmem`) are absolute byte addresses that must be 4-byte
/// aligned and below [`crate::MAX_JUMP_TARGET`]. The `Lwa`/`Swa` absolute
/// addressing mode reaches the low 1 MiB of memory
/// ([`crate::MAX_ABS_ADDR`]); the SDT's register save area lives there so
/// spill code needs no free base register, mirroring x86 absolute
/// addressing.
///
/// Calls (`Call`/`Callr`) push the address of the following instruction on
/// the stack (`sp -= 4; mem[sp] = pc + 4`) before transferring control;
/// `Ret` pops an address and jumps to it. `Jmem` loads a word from an
/// absolute memory slot and jumps to it — the SimRISC analogue of the x86
/// `jmp [mem]` used by indirect-branch translation caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    // ---- R-type ALU -------------------------------------------------------
    /// `rd = rs1 + rs2` (wrapping).
    Add { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 - rs2` (wrapping).
    Sub { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 * rs2` (wrapping, low 32 bits).
    Mul { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 / rs2` unsigned; division by zero yields `u32::MAX`.
    Divu { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 % rs2` unsigned; remainder by zero yields `rs1`.
    Remu { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 & rs2`.
    And { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 | rs2`.
    Or { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 ^ rs2`.
    Xor { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 << (rs2 & 31)`.
    Sll { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 >> (rs2 & 31)` (logical).
    Srl { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = ((rs1 as i32) >> (rs2 & 31)) as u32` (arithmetic).
    Sra { rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs` (register move).
    Mov { rd: Reg, rs: Reg },

    // ---- I-type ALU -------------------------------------------------------
    /// `rd = rs1 + sext(imm)` (wrapping).
    Addi { rd: Reg, rs1: Reg, imm: i16 },
    /// `rd = rs1 & zext(imm)`.
    Andi { rd: Reg, rs1: Reg, imm: u16 },
    /// `rd = rs1 | zext(imm)`.
    Ori { rd: Reg, rs1: Reg, imm: u16 },
    /// `rd = rs1 ^ zext(imm)`.
    Xori { rd: Reg, rs1: Reg, imm: u16 },
    /// `rd = rs1 << shamt` with `shamt` in `0..32`.
    Slli { rd: Reg, rs1: Reg, shamt: u8 },
    /// `rd = rs1 >> shamt` (logical).
    Srli { rd: Reg, rs1: Reg, shamt: u8 },
    /// `rd = ((rs1 as i32) >> shamt) as u32` (arithmetic).
    Srai { rd: Reg, rs1: Reg, shamt: u8 },
    /// `rd = imm << 16` (load upper immediate).
    Lui { rd: Reg, imm: u16 },

    // ---- Memory -----------------------------------------------------------
    /// `rd = mem32[rs1 + sext(off)]`.
    Lw { rd: Reg, rs1: Reg, off: i16 },
    /// `mem32[rs1 + sext(off)] = rs2`.
    Sw { rs2: Reg, rs1: Reg, off: i16 },
    /// `rd = sext8(mem8[rs1 + sext(off)])`.
    Lb { rd: Reg, rs1: Reg, off: i16 },
    /// `rd = zext8(mem8[rs1 + sext(off)])`.
    Lbu { rd: Reg, rs1: Reg, off: i16 },
    /// `mem8[rs1 + sext(off)] = rs2 & 0xFF`.
    Sb { rs2: Reg, rs1: Reg, off: i16 },
    /// `rd = mem32[addr]` with a 20-bit absolute address.
    Lwa { rd: Reg, addr: u32 },
    /// `mem32[addr] = rs` with a 20-bit absolute address.
    Swa { rs: Reg, addr: u32 },
    /// `sp -= 4; mem32[sp] = rs`.
    Push { rs: Reg },
    /// `rd = mem32[sp]; sp += 4`.
    Pop { rd: Reg },
    /// `sp -= 4; mem32[sp] = flags` (architecture-taxed flags save).
    Pushf,
    /// `flags = mem32[sp]; sp += 4`.
    Popf,

    // ---- Compare & conditional branches ------------------------------------
    /// Sets flags from `rs1 ? rs2` (eq, signed lt, unsigned lt).
    Cmp { rs1: Reg, rs2: Reg },
    /// Sets flags from `rs1 ? sext(imm)`.
    Cmpi { rs1: Reg, imm: i16 },
    /// Branch if equal (flags.eq).
    Beq { off: i16 },
    /// Branch if not equal.
    Bne { off: i16 },
    /// Branch if signed less-than (flags.lt).
    Blt { off: i16 },
    /// Branch if signed greater-or-equal.
    Bge { off: i16 },
    /// Branch if unsigned less-than (flags.ltu).
    Bltu { off: i16 },
    /// Branch if unsigned greater-or-equal.
    Bgeu { off: i16 },

    // ---- Control transfer ---------------------------------------------------
    /// Unconditional jump to an absolute byte address.
    Jmp { target: u32 },
    /// Direct call: push `pc + 4`, jump to `target`.
    Call { target: u32 },
    /// Indirect jump to the address in `rs`.
    Jr { rs: Reg },
    /// Indirect call: push `pc + 4`, jump to the address in `rs`.
    Callr { rs: Reg },
    /// Return: pop an address from the stack and jump to it.
    Ret,
    /// Jump indirect through memory: `pc = mem32[addr]` (absolute slot).
    Jmem { addr: u32 },

    // ---- System -------------------------------------------------------------
    /// Host upcall with a 16-bit code; the machine suspends and hands the
    /// code to the embedder (SDT runtime or syscall emulation).
    Trap { code: u16 },
    /// Stop the machine.
    Halt,
    /// No operation.
    Nop,
}

impl Instr {
    /// Returns `true` for instructions that may transfer control anywhere
    /// other than the following instruction (including `Halt` and `Trap`,
    /// which suspend sequential execution from the translator's viewpoint).
    ///
    /// The SDT translator uses this to find basic-block boundaries.
    ///
    /// ```
    /// use strata_isa::{Instr, Reg};
    /// assert!(Instr::Ret.ends_block());
    /// assert!(Instr::Beq { off: 2 }.ends_block());
    /// assert!(!Instr::Add { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }.ends_block());
    /// ```
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Blt { .. }
                | Instr::Bge { .. }
                | Instr::Bltu { .. }
                | Instr::Bgeu { .. }
                | Instr::Jmp { .. }
                | Instr::Call { .. }
                | Instr::Jr { .. }
                | Instr::Callr { .. }
                | Instr::Ret
                | Instr::Jmem { .. }
                | Instr::Halt
        )
    }

    /// Returns `true` for instructions that overwrite the condition flags
    /// (`cmp`/`cmpi` and `popf`). Static analyses over emitted dispatch
    /// code use this to prove the application's flags survive a lookup.
    ///
    /// ```
    /// use strata_isa::{Instr, Reg};
    /// assert!(Instr::Cmp { rs1: Reg::R1, rs2: Reg::R2 }.writes_flags());
    /// assert!(Instr::Popf.writes_flags());
    /// assert!(!Instr::Add { rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }.writes_flags());
    /// ```
    pub fn writes_flags(&self) -> bool {
        matches!(self, Instr::Cmp { .. } | Instr::Cmpi { .. } | Instr::Popf)
    }

    /// Returns `true` for instructions whose behaviour depends on the
    /// current condition flags (the conditional branches and `pushf`).
    pub fn reads_flags(&self) -> bool {
        matches!(
            self,
            Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Blt { .. }
                | Instr::Bge { .. }
                | Instr::Bltu { .. }
                | Instr::Bgeu { .. }
                | Instr::Pushf
        )
    }

    /// The general-purpose register this instruction writes, if any.
    ///
    /// `Pop` reports its explicit destination (the implicit stack-pointer
    /// update is not a "destination" in the dataflow sense, matching how
    /// `push`/`pushf`/`popf` and stores report `None`).
    ///
    /// ```
    /// use strata_isa::{Instr, Reg};
    /// assert_eq!(Instr::Mov { rd: Reg::R3, rs: Reg::R1 }.dest_reg(), Some(Reg::R3));
    /// assert_eq!(Instr::Pop { rd: Reg::R1 }.dest_reg(), Some(Reg::R1));
    /// assert_eq!(Instr::Push { rs: Reg::R1 }.dest_reg(), None);
    /// assert_eq!(Instr::Swa { rs: Reg::R1, addr: 0x100 }.dest_reg(), None);
    /// ```
    pub fn dest_reg(&self) -> Option<Reg> {
        use Instr::*;
        match *self {
            Add { rd, .. }
            | Sub { rd, .. }
            | Mul { rd, .. }
            | Divu { rd, .. }
            | Remu { rd, .. }
            | And { rd, .. }
            | Or { rd, .. }
            | Xor { rd, .. }
            | Sll { rd, .. }
            | Srl { rd, .. }
            | Sra { rd, .. }
            | Mov { rd, .. }
            | Addi { rd, .. }
            | Andi { rd, .. }
            | Ori { rd, .. }
            | Xori { rd, .. }
            | Slli { rd, .. }
            | Srli { rd, .. }
            | Srai { rd, .. }
            | Lui { rd, .. }
            | Lw { rd, .. }
            | Lb { rd, .. }
            | Lbu { rd, .. }
            | Lwa { rd, .. }
            | Pop { rd } => Some(rd),
            _ => None,
        }
    }

    /// The statically known control-transfer target of the instruction at
    /// address `pc`: the absolute target of `jmp`/`call`, or the resolved
    /// `pc + 4 + off * 4` destination of a conditional branch. Indirect
    /// transfers and non-branches return `None`.
    ///
    /// ```
    /// use strata_isa::{Instr, Reg};
    /// assert_eq!(Instr::Jmp { target: 0x40 }.static_target(0x100), Some(0x40));
    /// assert_eq!(Instr::Beq { off: 2 }.static_target(0x100), Some(0x10C));
    /// assert_eq!(Instr::Beq { off: -1 }.static_target(0x100), Some(0x100));
    /// assert_eq!(Instr::Jr { rs: Reg::R1 }.static_target(0x100), None);
    /// ```
    pub fn static_target(&self, pc: u32) -> Option<u32> {
        use Instr::*;
        match *self {
            Jmp { target } | Call { target } => Some(target),
            Beq { off } | Bne { off } | Blt { off } | Bge { off } | Bltu { off } | Bgeu { off } => {
                Some((pc as i64 + 4 + off as i64 * 4) as u32)
            }
            _ => None,
        }
    }
}

/// The SimRISC condition flags, written by `cmp`/`cmpi` and read by the
/// conditional branches and `pushf`/`popf`.
///
/// ```
/// use strata_isa::Flags;
/// let f = Flags::from_compare(3, 7);
/// assert!(!f.eq && f.lt && f.ltu);
/// assert_eq!(Flags::from_bits(f.to_bits()), f);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Flags {
    /// Operands were equal.
    pub eq: bool,
    /// First operand was less than the second, compared as signed.
    pub lt: bool,
    /// First operand was less than the second, compared as unsigned.
    pub ltu: bool,
}

impl Flags {
    /// Computes flags exactly as `cmp a, b` would.
    #[inline]
    pub fn from_compare(a: u32, b: u32) -> Flags {
        Flags {
            eq: a == b,
            lt: (a as i32) < (b as i32),
            ltu: a < b,
        }
    }

    /// Packs the flags into the low three bits of a word (the `pushf`
    /// stack representation).
    #[inline]
    pub fn to_bits(self) -> u32 {
        (self.eq as u32) | ((self.lt as u32) << 1) | ((self.ltu as u32) << 2)
    }

    /// Unpacks flags from the low three bits of a word.
    #[inline]
    pub fn from_bits(bits: u32) -> Flags {
        Flags {
            eq: bits & 1 != 0,
            lt: bits & 2 != 0,
            ltu: bits & 4 != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_compare_semantics() {
        let f = Flags::from_compare(5, 5);
        assert!(f.eq && !f.lt && !f.ltu);

        // -1 (0xFFFF_FFFF) vs 1: signed less, unsigned greater.
        let f = Flags::from_compare(0xFFFF_FFFF, 1);
        assert!(!f.eq && f.lt && !f.ltu);

        let f = Flags::from_compare(1, 0xFFFF_FFFF);
        assert!(!f.eq && !f.lt && f.ltu);
    }

    #[test]
    fn flags_bits_roundtrip() {
        for bits in 0..8 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn flags_readers_and_writers() {
        use crate::Reg;
        assert!(Instr::Cmpi {
            rs1: Reg::R1,
            imm: 3
        }
        .writes_flags());
        assert!(Instr::Popf.writes_flags());
        assert!(!Instr::Pushf.writes_flags());
        assert!(Instr::Pushf.reads_flags());
        assert!(Instr::Bgeu { off: -2 }.reads_flags());
        assert!(!Instr::Jmp { target: 0 }.reads_flags());
        // ALU ops never touch flags on SimRISC (unlike x86) — that is
        // exactly what makes the pushf tax avoidable around hash code.
        assert!(!Instr::Addi {
            rd: Reg::R2,
            rs1: Reg::R2,
            imm: 1
        }
        .writes_flags());
    }

    #[test]
    fn dest_regs() {
        use crate::Reg;
        assert_eq!(
            Instr::Lwa {
                rd: Reg::R7,
                addr: 0x120
            }
            .dest_reg(),
            Some(Reg::R7)
        );
        assert_eq!(
            Instr::Lui {
                rd: Reg::R2,
                imm: 0x60
            }
            .dest_reg(),
            Some(Reg::R2)
        );
        for none in [
            Instr::Pushf,
            Instr::Popf,
            Instr::Push { rs: Reg::R3 },
            Instr::Sw {
                rs2: Reg::R1,
                rs1: Reg::R2,
                off: 0,
            },
            Instr::Cmp {
                rs1: Reg::R1,
                rs2: Reg::R2,
            },
            Instr::Ret,
            Instr::Jmem { addr: 0x100 },
        ] {
            assert_eq!(none.dest_reg(), None, "{none:?}");
        }
    }

    #[test]
    fn static_targets() {
        use crate::Reg;
        assert_eq!(
            Instr::Call { target: 0x200 }.static_target(0x80),
            Some(0x200)
        );
        assert_eq!(Instr::Bne { off: 0 }.static_target(0x80), Some(0x84));
        assert_eq!(Instr::Blt { off: -3 }.static_target(0x80), Some(0x78));
        assert_eq!(Instr::Ret.static_target(0x80), None);
        assert_eq!(Instr::Callr { rs: Reg::R4 }.static_target(0x80), None);
        assert_eq!(Instr::Jmem { addr: 0x100 }.static_target(0x80), None);
    }

    #[test]
    fn block_enders() {
        assert!(Instr::Jmp { target: 0 }.ends_block());
        assert!(Instr::Call { target: 0 }.ends_block());
        assert!(Instr::Jr { rs: Reg::R1 }.ends_block());
        assert!(Instr::Callr { rs: Reg::R1 }.ends_block());
        assert!(Instr::Jmem { addr: 0x100 }.ends_block());
        assert!(Instr::Halt.ends_block());
        assert!(!Instr::Trap { code: 1 }.ends_block());
        assert!(!Instr::Nop.ends_block());
        assert!(!Instr::Push { rs: Reg::R2 }.ends_block());
        assert!(!Instr::Cmp {
            rs1: Reg::R1,
            rs2: Reg::R2
        }
        .ends_block());
    }
}
