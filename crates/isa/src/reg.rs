use std::fmt;

/// One of the 16 SimRISC general-purpose registers.
///
/// Registers carry no hardware-enforced roles; by software convention `r15`
/// is the stack pointer ([`Reg::SP`]). The SDT runtime additionally reserves
/// no registers: it *spills* scratch registers (`r1`–`r3`) to an absolute
/// save area around emitted lookup code, exactly as SDTs on register-starved
/// architectures must.
///
/// ```
/// use strata_isa::Reg;
/// assert_eq!(Reg::SP, Reg::R15);
/// assert_eq!(Reg::R7.index(), 7);
/// assert_eq!(Reg::try_from(7u8).unwrap(), Reg::R7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);

    /// The stack pointer by software convention (`r15`).
    pub const SP: Reg = Reg::R15;

    /// Total number of general-purpose registers.
    pub const COUNT: usize = 16;

    /// Returns the register's index in `0..16`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns an iterator over all 16 registers in index order.
    ///
    /// ```
    /// use strata_isa::Reg;
    /// assert_eq!(Reg::all().count(), 16);
    /// ```
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16u8).map(Reg)
    }

    /// Constructs a register from the low 4 bits of `bits` (used by the
    /// decoder, which can never see an out-of-range index).
    #[inline]
    pub(crate) fn from_bits(bits: u32) -> Reg {
        Reg((bits & 0xF) as u8)
    }
}

impl TryFrom<u8> for Reg {
    type Error = InvalidRegError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        if value < 16 {
            Ok(Reg(value))
        } else {
            Err(InvalidRegError(value))
        }
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Reg::SP {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// Error returned when converting an out-of-range index into a [`Reg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidRegError(pub u8);

impl fmt::Display for InvalidRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "register index {} out of range (must be 0..16)", self.0)
    }
}

impl std::error::Error for InvalidRegError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::all() {
            assert_eq!(Reg::try_from(r.index() as u8).unwrap(), r);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(Reg::try_from(16), Err(InvalidRegError(16)));
        assert_eq!(Reg::try_from(255), Err(InvalidRegError(255)));
    }

    #[test]
    fn sp_alias() {
        assert_eq!(Reg::SP, Reg::R15);
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::R3.to_string(), "r3");
    }

    #[test]
    fn display_error() {
        assert_eq!(
            InvalidRegError(20).to_string(),
            "register index 20 out of range (must be 0..16)"
        );
    }
}
