//! Property tests: encode/decode is a lossless bijection on the encodable
//! instruction space, and decode never panics on arbitrary words.

use proptest::prelude::*;
use strata_isa::{decode, encode, Instr, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::try_from(i).unwrap())
}

fn arb_abs_addr() -> impl Strategy<Value = u32> {
    (0u32..(1 << 18)).prop_map(|w| w * 4)
}

fn arb_jump_target() -> impl Strategy<Value = u32> {
    (0u32..(1 << 24)).prop_map(|w| w * 4)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = arb_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Add { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Sub { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Mul { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Divu { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Remu { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::And { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Or { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Xor { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Sll { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Srl { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Sra { rd, rs1, rs2 }),
        (r(), r()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Addi { rd, rs1, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Andi { rd, rs1, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Ori { rd, rs1, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Xori { rd, rs1, imm }),
        (r(), r(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Slli { rd, rs1, shamt }),
        (r(), r(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srli { rd, rs1, shamt }),
        (r(), r(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srai { rd, rs1, shamt }),
        (r(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, off)| Instr::Lw { rd, rs1, off }),
        (r(), r(), any::<i16>()).prop_map(|(rs2, rs1, off)| Instr::Sw { rs2, rs1, off }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, off)| Instr::Lb { rd, rs1, off }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, off)| Instr::Lbu { rd, rs1, off }),
        (r(), r(), any::<i16>()).prop_map(|(rs2, rs1, off)| Instr::Sb { rs2, rs1, off }),
        (r(), arb_abs_addr()).prop_map(|(rd, addr)| Instr::Lwa { rd, addr }),
        (r(), arb_abs_addr()).prop_map(|(rs, addr)| Instr::Swa { rs, addr }),
        r().prop_map(|rs| Instr::Push { rs }),
        r().prop_map(|rd| Instr::Pop { rd }),
        Just(Instr::Pushf),
        Just(Instr::Popf),
        (r(), r()).prop_map(|(rs1, rs2)| Instr::Cmp { rs1, rs2 }),
        (r(), any::<i16>()).prop_map(|(rs1, imm)| Instr::Cmpi { rs1, imm }),
        any::<i16>().prop_map(|off| Instr::Beq { off }),
        any::<i16>().prop_map(|off| Instr::Bne { off }),
        any::<i16>().prop_map(|off| Instr::Blt { off }),
        any::<i16>().prop_map(|off| Instr::Bge { off }),
        any::<i16>().prop_map(|off| Instr::Bltu { off }),
        any::<i16>().prop_map(|off| Instr::Bgeu { off }),
        arb_jump_target().prop_map(|target| Instr::Jmp { target }),
        arb_jump_target().prop_map(|target| Instr::Call { target }),
        r().prop_map(|rs| Instr::Jr { rs }),
        r().prop_map(|rs| Instr::Callr { rs }),
        Just(Instr::Ret),
        arb_jump_target().prop_map(|addr| Instr::Jmem { addr }),
        any::<u16>().prop_map(|code| Instr::Trap { code }),
        Just(Instr::Halt),
        Just(Instr::Nop),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let word = encode(&instr);
        prop_assert_eq!(decode(word).expect("decode of encoded instr"), instr);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        // Either a valid instruction or a structured error; never a panic.
        let _ = decode(word);
    }

    #[test]
    fn decode_encode_fixpoint(word in any::<u32>()) {
        // Every decodable word re-encodes to a word that decodes to the same
        // instruction (encodings may be non-canonical in unused bits).
        if let Ok(instr) = decode(word) {
            let canon = encode(&instr);
            prop_assert_eq!(decode(canon).expect("canonical word decodes"), instr);
        }
    }

    #[test]
    fn display_is_nonempty_and_stable(instr in arb_instr()) {
        let s = instr.to_string();
        prop_assert!(!s.is_empty());
    }
}
