//! Randomized tests: encode/decode is a lossless bijection on the
//! encodable instruction space, and decode never panics on arbitrary
//! words. Uses the repo's deterministic [`SmallRng`] (seeded, reproducible)
//! instead of an external property-testing framework.

use strata_isa::{decode, encode, Instr, Reg};
use strata_stats::rng::SmallRng;

fn rand_reg(rng: &mut SmallRng) -> Reg {
    Reg::try_from(rng.gen_range(0u8..16)).unwrap()
}

fn rand_abs_addr(rng: &mut SmallRng) -> u32 {
    rng.gen_range(0u32..(1 << 18)) * 4
}

fn rand_jump_target(rng: &mut SmallRng) -> u32 {
    rng.gen_range(0u32..(1 << 24)) * 4
}

fn rand_i16(rng: &mut SmallRng) -> i16 {
    rng.gen_range(0u32..0x1_0000) as u16 as i16
}

fn rand_u16(rng: &mut SmallRng) -> u16 {
    rng.gen_range(0u32..0x1_0000) as u16
}

/// Uniformly samples one instruction from the full encodable space.
fn rand_instr(rng: &mut SmallRng) -> Instr {
    let r = |rng: &mut SmallRng| rand_reg(rng);
    match rng.gen_range(0u32..47) {
        0 => Instr::Add {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        1 => Instr::Sub {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        2 => Instr::Mul {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        3 => Instr::Divu {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        4 => Instr::Remu {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        5 => Instr::And {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        6 => Instr::Or {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        7 => Instr::Xor {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        8 => Instr::Sll {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        9 => Instr::Srl {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        10 => Instr::Sra {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        11 => Instr::Mov {
            rd: r(rng),
            rs: r(rng),
        },
        12 => Instr::Addi {
            rd: r(rng),
            rs1: r(rng),
            imm: rand_i16(rng),
        },
        13 => Instr::Andi {
            rd: r(rng),
            rs1: r(rng),
            imm: rand_u16(rng),
        },
        14 => Instr::Ori {
            rd: r(rng),
            rs1: r(rng),
            imm: rand_u16(rng),
        },
        15 => Instr::Xori {
            rd: r(rng),
            rs1: r(rng),
            imm: rand_u16(rng),
        },
        16 => Instr::Slli {
            rd: r(rng),
            rs1: r(rng),
            shamt: rng.gen_range(0u8..32),
        },
        17 => Instr::Srli {
            rd: r(rng),
            rs1: r(rng),
            shamt: rng.gen_range(0u8..32),
        },
        18 => Instr::Srai {
            rd: r(rng),
            rs1: r(rng),
            shamt: rng.gen_range(0u8..32),
        },
        19 => Instr::Lui {
            rd: r(rng),
            imm: rand_u16(rng),
        },
        20 => Instr::Lw {
            rd: r(rng),
            rs1: r(rng),
            off: rand_i16(rng),
        },
        21 => Instr::Sw {
            rs2: r(rng),
            rs1: r(rng),
            off: rand_i16(rng),
        },
        22 => Instr::Lb {
            rd: r(rng),
            rs1: r(rng),
            off: rand_i16(rng),
        },
        23 => Instr::Lbu {
            rd: r(rng),
            rs1: r(rng),
            off: rand_i16(rng),
        },
        24 => Instr::Sb {
            rs2: r(rng),
            rs1: r(rng),
            off: rand_i16(rng),
        },
        25 => Instr::Lwa {
            rd: r(rng),
            addr: rand_abs_addr(rng),
        },
        26 => Instr::Swa {
            rs: r(rng),
            addr: rand_abs_addr(rng),
        },
        27 => Instr::Push { rs: r(rng) },
        28 => Instr::Pop { rd: r(rng) },
        29 => Instr::Pushf,
        30 => Instr::Popf,
        31 => Instr::Cmp {
            rs1: r(rng),
            rs2: r(rng),
        },
        32 => Instr::Cmpi {
            rs1: r(rng),
            imm: rand_i16(rng),
        },
        33 => Instr::Beq { off: rand_i16(rng) },
        34 => Instr::Bne { off: rand_i16(rng) },
        35 => Instr::Blt { off: rand_i16(rng) },
        36 => Instr::Bge { off: rand_i16(rng) },
        37 => Instr::Bltu { off: rand_i16(rng) },
        38 => Instr::Bgeu { off: rand_i16(rng) },
        39 => Instr::Jmp {
            target: rand_jump_target(rng),
        },
        40 => Instr::Call {
            target: rand_jump_target(rng),
        },
        41 => Instr::Jr { rs: r(rng) },
        42 => Instr::Callr { rs: r(rng) },
        43 => Instr::Ret,
        44 => Instr::Jmem {
            addr: rand_jump_target(rng),
        },
        45 => Instr::Trap {
            code: rand_u16(rng),
        },
        46 => Instr::Halt,
        _ => Instr::Nop,
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xD15A_0001);
    for _ in 0..20_000 {
        let instr = rand_instr(&mut rng);
        let word = encode(&instr);
        assert_eq!(
            decode(word).expect("decode of encoded instr"),
            instr,
            "{instr:?}"
        );
    }
}

#[test]
fn decode_never_panics() {
    // Either a valid instruction or a structured error; never a panic.
    let mut rng = SmallRng::seed_from_u64(0xD15A_0002);
    for _ in 0..100_000 {
        let _ = decode(rng.next_u32());
    }
    // Sweep the opcode byte exhaustively at a few operand patterns.
    for hi in 0u32..256 {
        for lo in [0u32, 0xFFFF, 0x00FF_0000, 0x000F_0F0F] {
            let _ = decode((hi << 24) | lo);
        }
    }
}

#[test]
fn decode_encode_fixpoint() {
    // Every decodable word re-encodes to a word that decodes to the same
    // instruction (encodings may be non-canonical in unused bits).
    let mut rng = SmallRng::seed_from_u64(0xD15A_0003);
    for _ in 0..100_000 {
        let word = rng.next_u32();
        if let Ok(instr) = decode(word) {
            let canon = encode(&instr);
            assert_eq!(decode(canon).expect("canonical word decodes"), instr);
        }
    }
}

#[test]
fn display_is_nonempty_and_stable() {
    let mut rng = SmallRng::seed_from_u64(0xD15A_0004);
    for _ in 0..5_000 {
        let instr = rand_instr(&mut rng);
        let s = instr.to_string();
        assert!(!s.is_empty(), "{instr:?}");
        assert_eq!(instr.to_string(), s);
    }
}
