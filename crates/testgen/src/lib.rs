//! # strata-testgen — shared program generators and the difftest harness
//!
//! Test-support crate (a `dev-dependency` everywhere it is used; never
//! shipped in a library path). It exists so the repo's property suites
//! stop duplicating program generators, and so any two execution tiers
//! can be proven observationally equivalent by one harness:
//!
//! * [`wordgen`] — the word-level random program generator from the
//!   stepper-equivalence property test: unstructured instruction soup
//!   with ALU traffic, loads/stores, calls/returns, indirect jumps,
//!   deliberate fault cases, and **self-modifying stores into live
//!   code**. Programs are not guaranteed to terminate; they are run
//!   under fuel.
//! * [`progen`] — the structured generator from the SDT equivalence
//!   test: terminating counted loops over a random mix of arithmetic,
//!   memory round-trips, and direct/indirect calls through a function
//!   table.
//! * [`harness`] — the differential harness: run one program on two
//!   [`Machine`](strata_machine::Machine)s (any two
//!   [`ExecTier`](strata_machine::ExecTier)s, or `run` vs single
//!   `step`) in lockstep over randomized fuel slices and assert
//!   identical outcomes, CPU state, retire streams, architecture-model
//!   counters, and memory at every boundary. Failures shrink by
//!   binary-search truncation to a minimal reproducer written as a
//!   re-runnable `.sasm` file under `target/difftest-failures/`.

pub mod harness;
pub mod progen;
pub mod wordgen;
