//! Structured random program generation (terminating loops).
//!
//! Extracted from the SDT randomized-equivalence test: programs are a
//! counted outer loop whose body is a random mix of straight-line
//! arithmetic, memory round-trips, direct calls into a function table,
//! indirect calls/jumps through that table, and trap checkpoints. They
//! always terminate, so they can be run to completion and compared by
//! checksum/final state rather than under lockstep fuel.

use strata_asm::CodeBuilder;
use strata_isa::Reg;
use strata_machine::{layout, Program};
use strata_stats::rng::SmallRng;

/// One action in a generated loop body.
#[derive(Debug, Clone)]
pub enum Action {
    Arith(u8),
    MemRoundTrip(u16),
    DirectCall(usize),
    IndirectCall(usize),
    IndirectJump(usize),
    Checkpoint,
}

/// Draws one random action; call targets index a table of `functions`.
pub fn rand_action(rng: &mut SmallRng, functions: usize) -> Action {
    match rng.gen_range(0u32..6) {
        0 => Action::Arith(rng.gen_range(0u8..6)),
        1 => Action::MemRoundTrip(rng.gen_range(0u16..512)),
        2 => Action::DirectCall(rng.gen_range(0..functions)),
        3 => Action::IndirectCall(rng.gen_range(0..functions)),
        4 => Action::IndirectJump(rng.gen_range(0..functions)),
        _ => Action::Checkpoint,
    }
}

/// Builds a terminating program from a generated action list.
///
/// Register roles: r4 accumulator, r5 outer-loop counter, r8 function-table
/// base, r7 scratch target.
pub fn build_program(actions: &[Action], functions: usize, iters: u8) -> Program {
    let mut b = CodeBuilder::new(layout::APP_BASE);
    let table = layout::APP_DATA_BASE;

    let fn_labels: Vec<_> = (0..functions).map(|_| b.new_label()).collect();

    // Init: fill the function-pointer table.
    b.li(Reg::R8, table);
    for (i, l) in fn_labels.iter().enumerate() {
        b.li_label(Reg::R1, *l);
        b.sw(Reg::R1, Reg::R8, (i * 4) as i16);
    }
    b.li(Reg::R4, 0x1234);
    b.li(Reg::R5, iters as u32);

    let top = b.here();
    for (idx, action) in actions.iter().enumerate() {
        match action {
            Action::Arith(k) => {
                match k % 6 {
                    0 => b.addi(Reg::R4, Reg::R4, 7),
                    1 => b.xori(Reg::R4, Reg::R4, 0x5A5A),
                    2 => b.slli(Reg::R6, Reg::R4, 3).add(Reg::R4, Reg::R4, Reg::R6),
                    3 => b.srli(Reg::R6, Reg::R4, 5).xor(Reg::R4, Reg::R4, Reg::R6),
                    4 => b.sub(Reg::R4, Reg::R4, Reg::R5),
                    _ => {
                        b.li(Reg::R6, 0x10dcd);
                        b.mul(Reg::R4, Reg::R4, Reg::R6)
                    }
                };
            }
            Action::MemRoundTrip(off) => {
                let addr = layout::APP_DATA_BASE + 0x1000 + (*off as u32) * 4;
                b.li(Reg::R6, addr);
                b.sw(Reg::R4, Reg::R6, 0);
                b.lw(Reg::R7, Reg::R6, 0);
                b.add(Reg::R4, Reg::R4, Reg::R7);
            }
            Action::DirectCall(f) => {
                b.call(fn_labels[*f]);
            }
            Action::IndirectCall(f) => {
                b.lw(Reg::R7, Reg::R8, (*f * 4) as i16);
                b.callr(Reg::R7);
            }
            Action::IndirectJump(f) => {
                // Jump through a register over a poison instruction; the
                // target index perturbs the accumulator so different
                // generated jumps stay distinguishable.
                let l = b.new_label();
                b.li_label(Reg::R7, l);
                b.jr(Reg::R7);
                b.addi(Reg::R4, Reg::R4, 9999); // skipped if jr is correct
                b.bind(l).expect("fresh label");
                b.addi(Reg::R4, Reg::R4, (idx + f) as i16);
            }
            Action::Checkpoint => {
                b.trap(0x1);
            }
        }
    }
    b.addi(Reg::R5, Reg::R5, -1);
    b.cmpi(Reg::R5, 0);
    b.bne(top);
    b.trap(0x1);
    b.halt();

    // Function bodies: one per label, distinct arithmetic, all return.
    for (i, l) in fn_labels.iter().enumerate() {
        b.bind(*l).expect("function label bound once");
        match i % 3 {
            0 => b.addi(Reg::R4, Reg::R4, (i as i16) + 1),
            1 => b.xori(Reg::R4, Reg::R4, (i as u16) | 0x80),
            _ => b.srli(Reg::R6, Reg::R4, 2).add(Reg::R4, Reg::R4, Reg::R6),
        };
        b.ret();
    }

    let code = b.finish().expect("generated program assembles");
    Program::new("generated", code, Vec::new())
}
