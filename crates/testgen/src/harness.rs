//! The differential (lockstep) harness.
//!
//! Runs one generated program on two machines from identical initial
//! state, slicing fuel randomly, and asserts that every observable —
//! outcome, CPU state, retire-event stream, architecture-model
//! counters, and touched memory — is identical at every fuel boundary.
//! The two sides can be any pair of execution tiers, which is how the
//! threaded translation tier earns trust, or `run` vs a single-`step`
//! reference loop, which is how the fused interpreter earned it first.
//!
//! Failures shrink: the failing program is truncated by binary search
//! to the shortest prefix that still diverges, and the minimized case
//! is written to `target/difftest-failures/<label>-<seed>.sasm` as a
//! re-runnable canonical-assembly file.

use std::fs;
use std::path::PathBuf;

use strata_arch::{ArchModel, ArchProfile};
use strata_machine::{
    ExecTier, ExecutionObserver, Machine, MachineError, RetireEvent, StepOutcome, TierMutation,
};
use strata_stats::rng::SmallRng;

use crate::wordgen::WordProgram;

/// Records the retire stream and forwards it to a cost model.
pub struct Recorder {
    pub events: Vec<RetireEvent>,
    pub model: ArchModel,
}

impl Recorder {
    pub fn new(profile: ArchProfile) -> Recorder {
        Recorder {
            events: Vec::new(),
            model: ArchModel::new(profile),
        }
    }
}

impl ExecutionObserver for Recorder {
    fn on_retire(&mut self, ev: &RetireEvent) {
        self.events.push(*ev);
        self.model.on_retire(ev);
    }
}

/// Reference semantics of [`Machine::run`], expressed with `step` only.
pub fn run_by_steps<O: ExecutionObserver>(
    m: &mut Machine,
    obs: &mut O,
    fuel: u64,
) -> Result<StepOutcome, MachineError> {
    for _ in 0..fuel {
        match m.step(obs)? {
            StepOutcome::Running => {}
            outcome => return Ok(outcome),
        }
    }
    Err(MachineError::OutOfFuel { steps: fuel })
}

/// Rotates architecture profiles across trials so cost-model state
/// (caches, predictors) is exercised under several geometries.
pub fn profile_for(trial: u64) -> ArchProfile {
    match trial % 4 {
        0 => ArchProfile::x86_like(),
        1 => ArchProfile::sparc_like(),
        2 => ArchProfile::mips_like(),
        _ => ArchProfile::ideal(),
    }
}

/// Options for one lockstep comparison.
#[derive(Debug, Clone)]
pub struct LockstepOptions {
    /// Tier driving side A (the reference side).
    pub tier_a: ExecTier,
    /// Tier driving side B (the side under test).
    pub tier_b: ExecTier,
    /// Cost-model profile applied to both sides.
    pub profile: ArchProfile,
    /// Stop comparing after this many total steps (programs need not
    /// terminate).
    pub max_steps: u64,
    /// Fuel slices are drawn uniformly from `1..max_slice`.
    pub max_slice: u64,
    /// Mutation-testing mode: at each fuel boundary, try to corrupt a
    /// translated side-exit target on side B (once). The run is then
    /// *expected* to diverge; see [`LockstepReport::corrupted`].
    pub corrupt_b: bool,
    /// Lowered-op mutation-testing mode: at each fuel boundary, try to
    /// inject the given defect class into side B's translated blocks
    /// (once). Like [`corrupt_b`](LockstepOptions::corrupt_b), a landed
    /// mutation is expected to diverge — and the same defect classes
    /// feed the translation validator's sensitivity tests.
    pub corrupt_b_lowered: Option<TierMutation>,
}

impl Default for LockstepOptions {
    fn default() -> LockstepOptions {
        LockstepOptions {
            tier_a: ExecTier::Interp,
            tier_b: ExecTier::Threaded(Default::default()),
            profile: ArchProfile::x86_like(),
            max_steps: 3_000,
            max_slice: 64,
            corrupt_b: false,
            corrupt_b_lowered: None,
        }
    }
}

/// A lockstep run that completed with both sides agreeing everywhere.
#[derive(Debug, Clone, Copy)]
pub struct LockstepReport {
    /// Instructions retired on each side.
    pub retired: usize,
    /// Whether the mutation hook actually landed (only meaningful with
    /// [`LockstepOptions::corrupt_b`]).
    pub corrupted: bool,
}

/// A detected divergence between the two sides.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Upper bound on retired instructions when the divergence surfaced.
    pub at_step: u64,
    /// Human-readable description of the first mismatching observable.
    pub what: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "after <= {} steps: {}", self.at_step, self.what)
    }
}

macro_rules! diverged {
    ($steps:expr, $($arg:tt)*) => {
        return Err(Divergence {
            at_step: $steps,
            what: format!($($arg)*),
        })
    };
}

/// Runs `prog` on both tiers in lockstep. `slice_seed` makes the fuel
/// slicing deterministic, so a failing `(program, slice_seed)` pair is
/// a complete reproducer.
pub fn run_lockstep(
    prog: &WordProgram,
    slice_seed: u64,
    opts: &LockstepOptions,
) -> Result<LockstepReport, Divergence> {
    let mut ma = prog.instantiate();
    let mut mb = prog.instantiate();
    ma.set_tier(opts.tier_a);
    mb.set_tier(opts.tier_b);
    let mut rec_a = Recorder::new(opts.profile.clone());
    let mut rec_b = Recorder::new(opts.profile.clone());

    let mut rng = SmallRng::seed_from_u64(slice_seed);
    let mut steps = 0u64;
    let mut checked_events = 0usize;
    let mut corrupted = false;
    while steps < opts.max_steps {
        let fuel = rng.gen_range(1u64..opts.max_slice.max(2));
        steps += fuel;
        let a = ma.run(&mut rec_a, fuel);
        let b = mb.run(&mut rec_b, fuel);
        if a != b {
            diverged!(steps, "outcome: a={a:?} b={b:?}");
        }
        if ma.cpu() != mb.cpu() {
            diverged!(steps, "cpu state: a={:?} b={:?}", ma.cpu(), mb.cpu());
        }
        if rec_a.events != rec_b.events {
            let i = rec_a
                .events
                .iter()
                .zip(&rec_b.events)
                .position(|(x, y)| x != y)
                .unwrap_or_else(|| rec_a.events.len().min(rec_b.events.len()));
            diverged!(
                steps,
                "retire streams (lengths {}/{}) first differ at event {}: a={:?} b={:?}",
                rec_a.events.len(),
                rec_b.events.len(),
                i,
                rec_a.events.get(i),
                rec_b.events.get(i)
            );
        }
        if let Some(what) = compare_models(&rec_a.model, &rec_b.model) {
            diverged!(steps, "arch model: {what}");
        }
        // Memory can only differ at stored addresses (the streams above
        // are equal, so both sides stored to the same places): compare
        // the words around every store retired in this slice.
        for ev in &rec_a.events[checked_events..] {
            if let Some(acc) = ev.mem.filter(|m| m.is_store) {
                let base = acc.addr & !3;
                let len = 8.min(ma.mem().size().saturating_sub(base));
                let wa = ma.mem().read_bytes(base, len);
                let wb = mb.mem().read_bytes(base, len);
                if wa != wb {
                    diverged!(
                        steps,
                        "memory at {base:#x} (store at {:#x}): a={wa:?} b={wb:?}",
                        acc.addr
                    );
                }
            }
        }
        checked_events = rec_a.events.len();
        if opts.corrupt_b && !corrupted {
            corrupted = mb.corrupt_translated_side_exit();
        }
        if let Some(mutation) = opts.corrupt_b_lowered {
            if !corrupted {
                corrupted = mb.corrupt_lowered_op(mutation);
            }
        }
        match a {
            Ok(StepOutcome::Halted)
            | Err(MachineError::OutOfBounds { .. })
            | Err(MachineError::UnalignedPc { .. })
            | Err(MachineError::Decode { .. }) => break,
            Ok(StepOutcome::Running)
            | Ok(StepOutcome::Trap(_))
            | Err(MachineError::OutOfFuel { .. }) => {}
        }
    }
    // Terminal boundary: the whole memory image must agree.
    let size = ma.mem().size();
    let ia = ma.mem().read_bytes(0, size).expect("full image");
    let ib = mb.mem().read_bytes(0, size).expect("full image");
    if ia != ib {
        let at = ia.iter().zip(ib).position(|(x, y)| x != y).unwrap_or(0);
        diverged!(steps, "final memory image first differs at {at:#x}");
    }
    Ok(LockstepReport {
        retired: rec_a.events.len(),
        corrupted,
    })
}

fn compare_models(a: &ArchModel, b: &ArchModel) -> Option<String> {
    if a.stats() != b.stats() {
        return Some(format!("stats a={:?} b={:?}", a.stats(), b.stats()));
    }
    if a.total_cycles() != b.total_cycles() {
        return Some(format!(
            "total_cycles a={} b={}",
            a.total_cycles(),
            b.total_cycles()
        ));
    }
    let caches = [
        ("icache hits", a.icache().hits(), b.icache().hits()),
        ("icache misses", a.icache().misses(), b.icache().misses()),
        ("dcache hits", a.dcache().hits(), b.dcache().hits()),
        ("dcache misses", a.dcache().misses(), b.dcache().misses()),
        (
            "indirect mispredicts",
            a.indirect_mispredicts(),
            b.indirect_mispredicts(),
        ),
        (
            "cond mispredicts",
            a.cond_mispredicts(),
            b.cond_mispredicts(),
        ),
    ];
    for (name, x, y) in caches {
        if x != y {
            return Some(format!("{name} a={x} b={y}"));
        }
    }
    None
}

/// Shrinks a failing case by binary-search truncation: the shortest
/// prefix (plus a final `halt`) that still diverges under the same
/// slice seed. Divergence is not always monotone in program length, so
/// the result is re-verified and the original returned if shrinking
/// lost the bug.
pub fn shrink(prog: &WordProgram, slice_seed: u64, opts: &LockstepOptions) -> WordProgram {
    let fails = |keep: usize| run_lockstep(&prog.truncated(keep), slice_seed, opts).is_err();
    let mut lo = 1usize;
    let mut hi = prog.words.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let candidate = prog.truncated(hi);
    if run_lockstep(&candidate, slice_seed, opts).is_err() {
        candidate
    } else {
        prog.clone()
    }
}

/// Directory failing reproducers are written to.
pub fn failures_dir() -> PathBuf {
    PathBuf::from("target/difftest-failures")
}

/// Runs `cases` generated programs (seeds `base_seed..base_seed+cases`)
/// through the lockstep harness, rotating cost-model profiles. On the
/// first divergence the case is shrunk, written out as
/// `target/difftest-failures/<label>-<seed>.sasm`, and the test panics
/// with the divergence and the reproducer path.
pub fn run_difftest(label: &str, base_seed: u64, cases: u64, opts: &LockstepOptions) {
    let mut total_retired = 0usize;
    for case in 0..cases {
        let seed = base_seed + case;
        let mut rng = SmallRng::seed_from_u64(seed);
        let prog = WordProgram::generate(&mut rng);
        let mut opts = opts.clone();
        opts.profile = profile_for(case);
        match run_lockstep(&prog, seed, &opts) {
            Ok(report) => total_retired += report.retired,
            Err(div) => {
                let min = shrink(&prog, seed, &opts);
                let path = failures_dir().join(format!("{label}-{seed}.sasm"));
                let _ = fs::create_dir_all(failures_dir());
                let write_note = match fs::write(&path, min.to_sasm()) {
                    Ok(()) => format!(
                        "minimized reproducer ({} words): {}",
                        min.words.len(),
                        path.display()
                    ),
                    Err(e) => format!("could not write reproducer: {e}"),
                };
                panic!(
                    "difftest {label}: seed {seed} diverged {div}\n\
                     tiers: a={:?} b={:?}\n{write_note}",
                    opts.tier_a, opts.tier_b
                );
            }
        }
    }
    // Sanity-check the generator: a healthy fraction of programs must
    // actually execute (a case can legitimately retire nothing when its
    // first instruction faults, but not most of them).
    assert!(
        total_retired as u64 > cases * 100,
        "only {total_retired} instructions retired over {cases} cases — generator degenerate?"
    );
}
