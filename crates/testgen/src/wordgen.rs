//! Word-level random program generation (unstructured instruction soup).
//!
//! Extracted from the arch stepper-equivalence property test so every
//! differential suite draws from the same distribution: ALU ops, memory
//! traffic through pre-seeded pointer registers, calls/returns, indirect
//! jumps (including a deliberately unaligned pointer), traps, halts, and
//! self-modifying stores that patch live code. Programs run under fuel
//! and may legitimately fault — differential consumers assert that both
//! sides fault *identically*.

use strata_isa::{encode, Instr, Reg};
use strata_machine::{layout, Machine};
use strata_stats::rng::SmallRng;

/// Program length in words; the last word is always `halt`.
pub const CODE_LEN: usize = 48;

/// `Reg` from a raw index (panics above 15).
pub fn reg(i: u8) -> Reg {
    Reg::try_from(i).unwrap()
}

/// Scratch destinations; r5..r8 are reserved as pre-seeded address /
/// payload registers so most generated traffic stays in bounds.
pub fn scratch(rng: &mut SmallRng) -> Reg {
    const SCRATCH: [u8; 8] = [1, 2, 3, 4, 9, 10, 11, 12];
    reg(SCRATCH[rng.gen_range(0usize..SCRATCH.len())])
}

/// Any register as a source operand.
pub fn any_reg(rng: &mut SmallRng) -> Reg {
    reg(rng.gen_range(0u8..16))
}

/// A word-aligned address inside the generated code region.
pub fn code_slot(rng: &mut SmallRng) -> u32 {
    layout::APP_BASE + rng.gen_range(0u32..CODE_LEN as u32) * 4
}

/// A word slot for the absolutely-addressed ops (`lwa`/`swa`/`jmem`),
/// whose encoding caps addresses at 20 bits — use low memory, below the
/// code region at `APP_BASE`.
pub fn low_slot(rng: &mut SmallRng) -> u32 {
    0x400 + rng.gen_range(0u32..256) * 4
}

/// A conditional-branch offset from slot `i` landing inside the region.
pub fn branch_off(rng: &mut SmallRng, i: usize) -> i16 {
    let target = rng.gen_range(0u32..CODE_LEN as u32) as i32;
    (target - i as i32 - 1) as i16
}

/// A random instruction for slot `i` of the program.
pub fn gen_instr(rng: &mut SmallRng, i: usize) -> Instr {
    let rd = scratch(rng);
    let rs1 = any_reg(rng);
    let rs2 = any_reg(rng);
    match rng.gen_range(0u32..100) {
        0..=11 => match rng.gen_range(0u32..6) {
            0 => Instr::Add { rd, rs1, rs2 },
            1 => Instr::Sub { rd, rs1, rs2 },
            2 => Instr::Xor { rd, rs1, rs2 },
            3 => Instr::And { rd, rs1, rs2 },
            4 => Instr::Or { rd, rs1, rs2 },
            _ => Instr::Sll { rd, rs1, rs2 },
        },
        12..=21 => match rng.gen_range(0u32..4) {
            0 => Instr::Addi {
                rd,
                rs1,
                imm: (rng.gen_range(0u32..1000) as i32 - 500) as i16,
            },
            1 => Instr::Ori {
                rd,
                rs1,
                imm: rng.next_u32() as u16,
            },
            2 => Instr::Slli {
                rd,
                rs1,
                shamt: rng.gen_range(0u32..32) as u8,
            },
            _ => Instr::Lui {
                rd,
                imm: rng.next_u32() as u16,
            },
        },
        22..=27 => match rng.gen_range(0u32..3) {
            0 => Instr::Mul { rd, rs1, rs2 },
            1 => Instr::Divu { rd, rs1, rs2 },
            _ => Instr::Remu { rd, rs1, rs2 },
        },
        // Loads/stores through the pre-seeded data pointer in r5.
        28..=39 => {
            let off = rng.gen_range(0u32..64) as i16;
            match rng.gen_range(0u32..4) {
                0 => Instr::Lw {
                    rd,
                    rs1: reg(5),
                    off,
                },
                1 => Instr::Sw {
                    rs2: rs1,
                    rs1: reg(5),
                    off,
                },
                2 => Instr::Lbu {
                    rd,
                    rs1: reg(5),
                    off,
                },
                _ => Instr::Sb {
                    rs2: rs1,
                    rs1: reg(5),
                    off,
                },
            }
        }
        40..=45 => match rng.gen_range(0u32..2) {
            0 => Instr::Cmp { rs1, rs2 },
            _ => Instr::Cmpi {
                rs1,
                imm: (rng.gen_range(0u32..200) as i32 - 100) as i16,
            },
        },
        46..=55 => {
            let off = branch_off(rng, i);
            match rng.gen_range(0u32..4) {
                0 => Instr::Beq { off },
                1 => Instr::Bne { off },
                2 => Instr::Blt { off },
                _ => Instr::Bgeu { off },
            }
        }
        56..=61 => match rng.gen_range(0u32..2) {
            0 => Instr::Jmp {
                target: code_slot(rng),
            },
            _ => Instr::Call {
                target: code_slot(rng),
            },
        },
        // r6 holds an aligned code address; r8 a deliberately unaligned
        // one, so both paths must surface the same UnalignedPc error.
        62..=66 => {
            let rs = if rng.gen_range(0u32..8) == 0 {
                reg(8)
            } else {
                reg(6)
            };
            if rng.gen_bool(0.5) {
                Instr::Jr { rs }
            } else {
                Instr::Callr { rs }
            }
        }
        67..=70 => Instr::Ret,
        71..=76 => {
            if rng.gen_bool(0.5) {
                Instr::Push { rs: rs1 }
            } else {
                Instr::Pop { rd }
            }
        }
        // Self-modifying store: r7 holds a valid encoded instruction and
        // r6 a code address, so this patches live code and must
        // invalidate the predecoded page (and, under a translating
        // tier, flush any superblock built over it).
        77..=82 => Instr::Sw {
            rs2: reg(7),
            rs1: reg(6),
            off: (rng.gen_range(0u32..8) * 4) as i16,
        },
        83..=87 => {
            if rng.gen_bool(0.5) {
                Instr::Swa {
                    rs: rs1,
                    addr: low_slot(rng),
                }
            } else {
                Instr::Lwa {
                    rd,
                    addr: low_slot(rng),
                }
            }
        }
        88..=89 => {
            if rng.gen_bool(0.5) {
                Instr::Pushf
            } else {
                Instr::Popf
            }
        }
        90..=92 => Instr::Trap {
            code: rng.gen_range(0u32..1000) as u16,
        },
        93 => Instr::Jmem {
            addr: low_slot(rng),
        },
        94 => Instr::Halt,
        _ => Instr::Nop,
    }
}

/// A generated word program plus the machine setup it expects:
/// everything needed to instantiate bit-identical machines for each
/// side of a differential run, and to reproduce the case from a file.
#[derive(Debug, Clone)]
pub struct WordProgram {
    /// Encoded instruction words loaded at [`layout::APP_BASE`].
    pub words: Vec<u32>,
    /// Initial values for r1..r4.
    pub seeds: [u32; 4],
    /// The decodable instruction whose encoding is pre-seeded into r7
    /// (the payload self-modifying stores write into code).
    pub patch: Instr,
    /// Aligned code address pre-seeded into r6 (r8 gets `+2`,
    /// deliberately unaligned).
    pub code_target: u32,
}

impl WordProgram {
    /// Draws a fresh random program (the distribution of the original
    /// stepper-equivalence trials).
    pub fn generate(rng: &mut SmallRng) -> WordProgram {
        let words: Vec<u32> = (0..CODE_LEN - 1)
            .map(|i| encode(&gen_instr(rng, i)))
            .chain([encode(&Instr::Halt)])
            .collect();
        // The payload r7 patches into code must itself be decodable.
        let patch = match rng.gen_range(0u32..3) {
            0 => Instr::Nop,
            1 => Instr::Addi {
                rd: scratch(rng),
                rs1: scratch(rng),
                imm: (rng.gen_range(0u32..200) as i32 - 100) as i16,
            },
            _ => Instr::Halt,
        };
        let seeds: [u32; 4] = [
            rng.next_u32(),
            rng.next_u32(),
            rng.next_u32(),
            rng.next_u32(),
        ];
        let code_target = code_slot(rng);
        WordProgram {
            words,
            seeds,
            patch,
            code_target,
        }
    }

    /// Builds a machine with this program loaded and registers seeded.
    /// Every call returns an identical machine, which is what makes
    /// lockstep comparison meaningful.
    pub fn instantiate(&self) -> Machine {
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        m.write_code(layout::APP_BASE, &self.words).unwrap();
        let cpu = m.cpu_mut();
        cpu.pc = layout::APP_BASE;
        for (i, &v) in self.seeds.iter().enumerate() {
            cpu.set_reg(reg(1 + i as u8), v);
        }
        cpu.set_reg(reg(5), layout::APP_DATA_BASE);
        cpu.set_reg(reg(6), self.code_target);
        cpu.set_reg(reg(7), encode(&self.patch));
        cpu.set_reg(reg(8), self.code_target + 2); // unaligned
        m
    }

    /// The same case truncated to its first `keep` words (plus a final
    /// `halt`), used by binary-search shrinking. Setup registers are
    /// unchanged so the shrunk case stays faithful to the original.
    pub fn truncated(&self, keep: usize) -> WordProgram {
        let keep = keep.min(self.words.len());
        let mut words: Vec<u32> = self.words[..keep].to_vec();
        words.push(encode(&Instr::Halt));
        WordProgram {
            words,
            ..self.clone()
        }
    }

    /// Renders the case as a re-runnable `.sasm` file: a header of
    /// `;` comments capturing the register setup, then one canonical-
    /// syntax instruction per line (the exact text `strata-asm` accepts,
    /// assembled at [`layout::APP_BASE`]).
    pub fn to_sasm(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "; strata difftest reproducer");
        let _ = writeln!(
            out,
            "; assemble at {:#x}; set pc = {:#x}",
            layout::APP_BASE,
            layout::APP_BASE
        );
        let _ = writeln!(
            out,
            "; setup: r1={:#x} r2={:#x} r3={:#x} r4={:#x}",
            self.seeds[0], self.seeds[1], self.seeds[2], self.seeds[3]
        );
        let _ = writeln!(
            out,
            "; setup: r5={:#x} (data) r6={:#x} (code ptr) r8={:#x} (unaligned)",
            layout::APP_DATA_BASE,
            self.code_target,
            self.code_target + 2
        );
        let _ = writeln!(
            out,
            "; setup: r7={:#x} (encoded patch: {})",
            encode(&self.patch),
            self.patch
        );
        for (i, &w) in self.words.iter().enumerate() {
            match strata_isa::decode(w) {
                Ok(instr) => {
                    let _ = writeln!(out, "    {instr:<24}; [{i:02}] {w:#010x}");
                }
                Err(_) => {
                    // The generator only emits encodable instructions,
                    // but stay robust for hand-edited cases.
                    let _ = writeln!(
                        out,
                        "    nop                     ; [{i:02}] undecodable {w:#010x}"
                    );
                }
            }
        }
        out
    }
}
