use strata_isa::{encode, Instr, Reg, INSTR_BYTES};

use crate::AsmError;

/// A forward-referenceable code location handle created by
/// [`CodeBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Instruction-level items recorded before label resolution.
#[derive(Debug, Clone, Copy)]
enum Item {
    /// An instruction needing no resolution.
    Fixed(Instr),
    /// A conditional branch to a label; the variant is rebuilt with the
    /// resolved offset.
    Branch { template: Instr, label: Label },
    /// `jmp`/`call` to a label (absolute target patched in).
    Jump { is_call: bool, label: Label },
    /// `lui rd, hi(label)` half of a `li_label`.
    LuiLabel { rd: Reg, label: Label },
    /// `ori rd, rd, lo(label)` half of a `li_label`.
    OriLabel { rd: Reg, label: Label },
    /// Raw data word (`.word`).
    Word(u32),
}

/// A programmatic SimRISC assembler with labels and forward references.
///
/// The builder records instructions and label uses, then [`finish`] resolves
/// every reference and returns the encoded words. Code is laid out
/// contiguously starting at the base address given to [`CodeBuilder::new`];
/// `jmp`/`call`/`li_label` targets resolve to absolute byte addresses, and
/// conditional branches to word offsets.
///
/// Every instruction has a method of the same name (`add`, `lw`, `beq`, …);
/// conditional branches and jumps take a [`Label`]. See the crate-level
/// example.
///
/// [`finish`]: CodeBuilder::finish
#[derive(Debug)]
pub struct CodeBuilder {
    base: u32,
    items: Vec<Item>,
    labels: Vec<Option<u32>>,
}

impl CodeBuilder {
    /// Creates a builder whose first instruction will live at byte address
    /// `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn new(base: u32) -> CodeBuilder {
        assert!(
            base.is_multiple_of(INSTR_BYTES),
            "code base {base:#x} is not word aligned"
        );
        CodeBuilder {
            base,
            items: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Returns the base address passed to [`CodeBuilder::new`].
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::RebindLabel`] if the label is already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        let slot = &mut self.labels[label.0];
        if slot.is_some() {
            return Err(AsmError::RebindLabel(label.0));
        }
        *slot = Some(self.items.len() as u32);
        Ok(())
    }

    /// Convenience: creates a label already bound to the current position.
    pub fn here(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l).expect("fresh label cannot be bound");
        l
    }

    /// Byte address of the *next* instruction to be emitted.
    pub fn current_addr(&self) -> u32 {
        self.base + self.items.len() as u32 * INSTR_BYTES
    }

    /// Appends an already-formed instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Fixed(instr));
        self
    }

    /// Appends a raw data word (the `.word` directive).
    pub fn word(&mut self, value: u32) -> &mut Self {
        self.items.push(Item::Word(value));
        self
    }

    /// Loads a 32-bit constant via the canonical `lui`+`ori` pair.
    ///
    /// Always occupies exactly two instructions, so generated code has a
    /// predictable layout.
    pub fn li(&mut self, rd: Reg, value: u32) -> &mut Self {
        self.emit(Instr::Lui {
            rd,
            imm: (value >> 16) as u16,
        });
        self.emit(Instr::Ori {
            rd,
            rs1: rd,
            imm: (value & 0xFFFF) as u16,
        });
        self
    }

    /// Loads the absolute address of `label` via `lui`+`ori`.
    pub fn li_label(&mut self, rd: Reg, label: Label) -> &mut Self {
        self.items.push(Item::LuiLabel { rd, label });
        self.items.push(Item::OriLabel { rd, label });
        self
    }

    /// Resolves all references and returns the encoded machine words.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound, or [`AsmError::BranchOutOfRange`] if a conditional branch
    /// cannot reach its target.
    pub fn finish(&self) -> Result<Vec<u32>, AsmError> {
        let resolve = |label: Label| -> Result<u32, AsmError> {
            self.labels[label.0]
                .map(|idx| self.base + idx * INSTR_BYTES)
                .ok_or(AsmError::UnboundLabel(label.0))
        };

        let mut out = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let pc = self.base + idx as u32 * INSTR_BYTES;
            let word = match *item {
                Item::Fixed(instr) => encode(&instr),
                Item::Word(w) => w,
                Item::Branch { template, label } => {
                    let target = resolve(label)?;
                    let delta = (target as i64 - (pc as i64 + 4)) / INSTR_BYTES as i64;
                    let off = i16::try_from(delta).map_err(|_| AsmError::BranchOutOfRange {
                        from: pc,
                        to: target,
                    })?;
                    encode(&rebuild_branch(template, off))
                }
                Item::Jump { is_call, label } => {
                    let target = resolve(label)?;
                    let instr = if is_call {
                        Instr::Call { target }
                    } else {
                        Instr::Jmp { target }
                    };
                    encode(&instr)
                }
                Item::LuiLabel { rd, label } => {
                    let target = resolve(label)?;
                    encode(&Instr::Lui {
                        rd,
                        imm: (target >> 16) as u16,
                    })
                }
                Item::OriLabel { rd, label } => {
                    let target = resolve(label)?;
                    encode(&Instr::Ori {
                        rd,
                        rs1: rd,
                        imm: (target & 0xFFFF) as u16,
                    })
                }
            };
            out.push(word);
        }
        Ok(out)
    }
}

fn rebuild_branch(template: Instr, off: i16) -> Instr {
    match template {
        Instr::Beq { .. } => Instr::Beq { off },
        Instr::Bne { .. } => Instr::Bne { off },
        Instr::Blt { .. } => Instr::Blt { off },
        Instr::Bge { .. } => Instr::Bge { off },
        Instr::Bltu { .. } => Instr::Bltu { off },
        Instr::Bgeu { .. } => Instr::Bgeu { off },
        other => unreachable!("non-branch template {other:?}"),
    }
}

macro_rules! rrr {
    ($($name:ident => $variant:ident),* $(,)?) => {
        $(
            #[doc = concat!("Appends `", stringify!($name), " rd, rs1, rs2`.")]
            pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                self.emit(Instr::$variant { rd, rs1, rs2 })
            }
        )*
    };
}

macro_rules! rri {
    ($($name:ident => $variant:ident : $imm:ty),* $(,)?) => {
        $(
            #[doc = concat!("Appends `", stringify!($name), " rd, rs1, imm`.")]
            pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: $imm) -> &mut Self {
                self.emit(Instr::$variant { rd, rs1, imm })
            }
        )*
    };
}

macro_rules! shift {
    ($($name:ident => $variant:ident),* $(,)?) => {
        $(
            #[doc = concat!("Appends `", stringify!($name), " rd, rs1, shamt`.")]
            pub fn $name(&mut self, rd: Reg, rs1: Reg, shamt: u8) -> &mut Self {
                self.emit(Instr::$variant { rd, rs1, shamt })
            }
        )*
    };
}

macro_rules! branch {
    ($($name:ident => $variant:ident),* $(,)?) => {
        $(
            #[doc = concat!("Appends a `", stringify!($name), "` to `label`.")]
            pub fn $name(&mut self, label: Label) -> &mut Self {
                self.items.push(Item::Branch {
                    template: Instr::$variant { off: 0 },
                    label,
                });
                self
            }
        )*
    };
}

impl CodeBuilder {
    rrr! {
        add => Add, sub => Sub, mul => Mul, divu => Divu, remu => Remu,
        and => And, or => Or, xor => Xor, sll => Sll, srl => Srl, sra => Sra,
    }

    rri! {
        addi => Addi: i16, andi => Andi: u16, ori => Ori: u16, xori => Xori: u16,
    }

    shift! { slli => Slli, srli => Srli, srai => Srai }

    branch! {
        beq => Beq, bne => Bne, blt => Blt, bge => Bge, bltu => Bltu, bgeu => Bgeu,
    }

    /// Appends `mov rd, rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Instr::Mov { rd, rs })
    }

    /// Appends `lui rd, imm`.
    pub fn lui(&mut self, rd: Reg, imm: u16) -> &mut Self {
        self.emit(Instr::Lui { rd, imm })
    }

    /// Appends `lw rd, off(rs1)`.
    pub fn lw(&mut self, rd: Reg, rs1: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Lw { rd, rs1, off })
    }

    /// Appends `sw rs2, off(rs1)`.
    pub fn sw(&mut self, rs2: Reg, rs1: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Sw { rs2, rs1, off })
    }

    /// Appends `lb rd, off(rs1)`.
    pub fn lb(&mut self, rd: Reg, rs1: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Lb { rd, rs1, off })
    }

    /// Appends `lbu rd, off(rs1)`.
    pub fn lbu(&mut self, rd: Reg, rs1: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Lbu { rd, rs1, off })
    }

    /// Appends `sb rs2, off(rs1)`.
    pub fn sb(&mut self, rs2: Reg, rs1: Reg, off: i16) -> &mut Self {
        self.emit(Instr::Sb { rs2, rs1, off })
    }

    /// Appends `lwa rd, [addr]`.
    pub fn lwa(&mut self, rd: Reg, addr: u32) -> &mut Self {
        self.emit(Instr::Lwa { rd, addr })
    }

    /// Appends `swa rs, [addr]`.
    pub fn swa(&mut self, rs: Reg, addr: u32) -> &mut Self {
        self.emit(Instr::Swa { rs, addr })
    }

    /// Appends `push rs`.
    pub fn push(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Push { rs })
    }

    /// Appends `pop rd`.
    pub fn pop(&mut self, rd: Reg) -> &mut Self {
        self.emit(Instr::Pop { rd })
    }

    /// Appends `pushf`.
    pub fn pushf(&mut self) -> &mut Self {
        self.emit(Instr::Pushf)
    }

    /// Appends `popf`.
    pub fn popf(&mut self) -> &mut Self {
        self.emit(Instr::Popf)
    }

    /// Appends `cmp rs1, rs2`.
    pub fn cmp(&mut self, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Instr::Cmp { rs1, rs2 })
    }

    /// Appends `cmpi rs1, imm`.
    pub fn cmpi(&mut self, rs1: Reg, imm: i16) -> &mut Self {
        self.emit(Instr::Cmpi { rs1, imm })
    }

    /// Appends `jmp label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.items.push(Item::Jump {
            is_call: false,
            label,
        });
        self
    }

    /// Appends `call label`.
    pub fn call(&mut self, label: Label) -> &mut Self {
        self.items.push(Item::Jump {
            is_call: true,
            label,
        });
        self
    }

    /// Appends `jmp` to an absolute byte address.
    pub fn jmp_abs(&mut self, target: u32) -> &mut Self {
        self.emit(Instr::Jmp { target })
    }

    /// Appends `call` to an absolute byte address.
    pub fn call_abs(&mut self, target: u32) -> &mut Self {
        self.emit(Instr::Call { target })
    }

    /// Appends `jr rs`.
    pub fn jr(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Jr { rs })
    }

    /// Appends `callr rs`.
    pub fn callr(&mut self, rs: Reg) -> &mut Self {
        self.emit(Instr::Callr { rs })
    }

    /// Appends `ret`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Ret)
    }

    /// Appends `jmem [addr]`.
    pub fn jmem(&mut self, addr: u32) -> &mut Self {
        self.emit(Instr::Jmem { addr })
    }

    /// Appends `trap code`.
    pub fn trap(&mut self, code: u16) -> &mut Self {
        self.emit(Instr::Trap { code })
    }

    /// Appends `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Instr::Halt)
    }

    /// Appends `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Instr::Nop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_isa::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut b = CodeBuilder::new(0x1000);
        let fwd = b.new_label();
        let top = b.here();
        b.cmpi(Reg::R1, 0);
        b.beq(fwd);
        b.jmp(top);
        b.bind(fwd).unwrap();
        b.halt();
        let code = b.finish().unwrap();

        // beq at 0x1004: target 0x100C → off = (0x100C - 0x1008)/4 = 1.
        assert_eq!(decode(code[1]).unwrap(), Instr::Beq { off: 1 });
        // jmp at 0x1008 back to 0x1000.
        assert_eq!(decode(code[2]).unwrap(), Instr::Jmp { target: 0x1000 });
    }

    #[test]
    fn li_label_splits_address() {
        let mut b = CodeBuilder::new(0x0030_0000);
        let l = b.new_label();
        b.li_label(Reg::R5, l);
        b.bind(l).unwrap();
        b.halt();
        let code = b.finish().unwrap();
        assert_eq!(
            decode(code[0]).unwrap(),
            Instr::Lui {
                rd: Reg::R5,
                imm: 0x0030
            }
        );
        assert_eq!(
            decode(code[1]).unwrap(),
            Instr::Ori {
                rd: Reg::R5,
                rs1: Reg::R5,
                imm: 0x0008
            }
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut b = CodeBuilder::new(0);
        let l = b.new_label();
        b.jmp(l);
        assert_eq!(b.finish(), Err(AsmError::UnboundLabel(0)));
    }

    #[test]
    fn rebinding_is_an_error() {
        let mut b = CodeBuilder::new(0);
        let l = b.new_label();
        b.bind(l).unwrap();
        assert_eq!(b.bind(l), Err(AsmError::RebindLabel(0)));
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut b = CodeBuilder::new(0);
        let far = b.new_label();
        b.beq(far);
        for _ in 0..40_000 {
            b.nop();
        }
        b.bind(far).unwrap();
        b.halt();
        match b.finish() {
            Err(AsmError::BranchOutOfRange { from: 0, .. }) => {}
            other => panic!("expected out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn current_addr_tracks_emission() {
        let mut b = CodeBuilder::new(0x2000);
        assert_eq!(b.current_addr(), 0x2000);
        b.nop().nop();
        assert_eq!(b.current_addr(), 0x2008);
        b.li(Reg::R1, 0xDEADBEEF);
        assert_eq!(b.current_addr(), 0x2010);
    }

    #[test]
    fn word_directive_passes_through() {
        let mut b = CodeBuilder::new(0);
        b.word(0x12345678);
        assert_eq!(b.finish().unwrap(), vec![0x12345678]);
    }
}
