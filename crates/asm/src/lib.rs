//! # strata-asm — assembler for the SimRISC ISA
//!
//! Two front ends produce SimRISC machine code:
//!
//! * [`CodeBuilder`] — a programmatic builder with labels and forward
//!   references, used by the workload generators and by tests. It also
//!   provides the `li` pseudo-instruction (a fixed `lui`+`ori` pair, so the
//!   emitted size is predictable and the constant patchable).
//! * [`assemble`] — a small text assembler accepting the canonical syntax
//!   printed by [`strata_isa::Instr`]'s `Display` impl, plus labels,
//!   comments (`;` or `#`), and a `.word` data directive.
//!
//! ## Example
//!
//! ```
//! use strata_asm::CodeBuilder;
//! use strata_isa::Reg;
//!
//! let mut b = CodeBuilder::new(0x1000);
//! let top = b.new_label();
//! b.li(Reg::R1, 10);
//! b.bind(top)?;
//! b.addi(Reg::R1, Reg::R1, -1);
//! b.cmpi(Reg::R1, 0);
//! b.bne(top);
//! b.halt();
//! let code = b.finish()?;
//! assert_eq!(code.len(), 6); // li expands to two instructions
//! # Ok::<(), strata_asm::AsmError>(())
//! ```

mod builder;
mod error;
mod text;

pub use builder::{CodeBuilder, Label};
pub use error::AsmError;
pub use text::assemble;
