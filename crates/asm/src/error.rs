use std::fmt;

/// Error produced while building or assembling SimRISC code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was used as a branch/jump target but never bound.
    UnboundLabel(usize),
    /// A label was bound twice.
    RebindLabel(usize),
    /// A conditional-branch target is further than an `i16` word offset can
    /// reach.
    BranchOutOfRange { from: u32, to: u32 },
    /// A parse error in the text assembler, with a 1-based line number.
    Parse { line: usize, message: String },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(id) => write!(f, "label {id} was used but never bound"),
            AsmError::RebindLabel(id) => write!(f, "label {id} was bound more than once"),
            AsmError::BranchOutOfRange { from, to } => {
                write!(
                    f,
                    "branch from {from:#x} to {to:#x} exceeds the i16 word-offset range"
                )
            }
            AsmError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for AsmError {}
