use std::collections::HashMap;

use strata_isa::{encode, Instr, Reg, INSTR_BYTES};

use crate::AsmError;

/// Assembles SimRISC source text into machine words laid out at `base`.
///
/// The accepted syntax is the canonical form printed by
/// [`strata_isa::Instr`]'s `Display` impl, extended with:
///
/// * `label:` definitions; branch and `jmp`/`call` operands may name labels,
/// * `li rd, imm` — expands to a `lui`+`ori` pair,
/// * `.word value` — emits a raw data word,
/// * comments introduced by `;` or `#`,
/// * decimal, hexadecimal (`0x…`), and negative immediates.
///
/// # Errors
///
/// Returns [`AsmError::Parse`] (with a 1-based line number) for syntax
/// errors, unknown mnemonics or registers, and out-of-range immediates, and
/// the label errors of [`crate::CodeBuilder::finish`] for unresolvable
/// control flow.
///
/// ```
/// use strata_asm::assemble;
/// let code = assemble(0x1000, r"
///     li   r1, 5
/// top:
///     addi r1, r1, -1
///     cmpi r1, 0
///     bne  top
///     halt
/// ")?;
/// assert_eq!(code.len(), 6);
/// # Ok::<(), strata_asm::AsmError>(())
/// ```
pub fn assemble(base: u32, source: &str) -> Result<Vec<u32>, AsmError> {
    // Pass 1: compute the word index of every label and statement.
    let mut labels: HashMap<&str, u32> = HashMap::new();
    let mut statements: Vec<(usize, &str)> = Vec::new();
    let mut word_index = 0u32;

    for (lineno, raw) in source.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            if labels.insert(name, word_index).is_some() {
                return Err(parse_err(lineno, format!("label `{name}` defined twice")));
            }
            rest = tail[1..].trim_start();
        }
        if !rest.is_empty() {
            statements.push((lineno, rest));
            word_index += statement_words(rest);
        }
    }

    // Pass 2: encode.
    let mut out = Vec::with_capacity(word_index as usize);
    for (lineno, stmt) in statements {
        let pc = base + out.len() as u32 * INSTR_BYTES;
        encode_statement(stmt, pc, base, &labels, &mut out)
            .map_err(|message| parse_err(lineno, message))?;
    }
    Ok(out)
}

fn parse_err(lineno: usize, message: impl Into<String>) -> AsmError {
    AsmError::Parse {
        line: lineno + 1,
        message: message.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Number of machine words a statement occupies (only `li` is multi-word).
fn statement_words(stmt: &str) -> u32 {
    let mnemonic = stmt.split_whitespace().next().unwrap_or("");
    if mnemonic.eq_ignore_ascii_case("li") {
        2
    } else {
        1
    }
}

fn encode_statement(
    stmt: &str,
    pc: u32,
    base: u32,
    labels: &HashMap<&str, u32>,
    out: &mut Vec<u32>,
) -> Result<(), String> {
    let (mnemonic, args_str) = match stmt.find(char::is_whitespace) {
        Some(pos) => (&stmt[..pos], stmt[pos..].trim()),
        None => (stmt, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let args: Vec<&str> = if args_str.is_empty() {
        Vec::new()
    } else {
        args_str.split(',').map(str::trim).collect()
    };

    let resolve = |name: &str| -> Result<u32, String> {
        if let Some(&idx) = labels.get(name) {
            Ok(base + idx * INSTR_BYTES)
        } else {
            parse_u32(name).ok_or_else(|| format!("unknown label or address `{name}`"))
        }
    };

    let nargs = args.len();
    let want = |n: usize| -> Result<(), String> {
        if nargs == n {
            Ok(())
        } else {
            Err(format!("`{mnemonic}` expects {n} operand(s), got {nargs}"))
        }
    };

    let rrr = |v: fn(Reg, Reg, Reg) -> Instr| -> Result<Instr, String> {
        want(3)?;
        Ok(v(
            parse_reg(args[0])?,
            parse_reg(args[1])?,
            parse_reg(args[2])?,
        ))
    };
    let branch = |v: fn(i16) -> Instr| -> Result<Instr, String> {
        want(1)?;
        // Label, or a literal numeric offset.
        if let Some(&idx) = labels.get(args[0]) {
            let target = base + idx * INSTR_BYTES;
            let delta = (target as i64 - (pc as i64 + 4)) / INSTR_BYTES as i64;
            let off = i16::try_from(delta)
                .map_err(|_| format!("branch target `{}` out of range", args[0]))?;
            Ok(v(off))
        } else {
            Ok(v(parse_i16(args[0])?))
        }
    };

    let instr = match mnemonic.as_str() {
        "add" => rrr(|rd, rs1, rs2| Instr::Add { rd, rs1, rs2 })?,
        "sub" => rrr(|rd, rs1, rs2| Instr::Sub { rd, rs1, rs2 })?,
        "mul" => rrr(|rd, rs1, rs2| Instr::Mul { rd, rs1, rs2 })?,
        "divu" => rrr(|rd, rs1, rs2| Instr::Divu { rd, rs1, rs2 })?,
        "remu" => rrr(|rd, rs1, rs2| Instr::Remu { rd, rs1, rs2 })?,
        "and" => rrr(|rd, rs1, rs2| Instr::And { rd, rs1, rs2 })?,
        "or" => rrr(|rd, rs1, rs2| Instr::Or { rd, rs1, rs2 })?,
        "xor" => rrr(|rd, rs1, rs2| Instr::Xor { rd, rs1, rs2 })?,
        "sll" => rrr(|rd, rs1, rs2| Instr::Sll { rd, rs1, rs2 })?,
        "srl" => rrr(|rd, rs1, rs2| Instr::Srl { rd, rs1, rs2 })?,
        "sra" => rrr(|rd, rs1, rs2| Instr::Sra { rd, rs1, rs2 })?,
        "mov" => {
            want(2)?;
            Instr::Mov {
                rd: parse_reg(args[0])?,
                rs: parse_reg(args[1])?,
            }
        }
        "addi" => {
            want(3)?;
            Instr::Addi {
                rd: parse_reg(args[0])?,
                rs1: parse_reg(args[1])?,
                imm: parse_i16(args[2])?,
            }
        }
        "andi" => {
            want(3)?;
            Instr::Andi {
                rd: parse_reg(args[0])?,
                rs1: parse_reg(args[1])?,
                imm: parse_u16(args[2])?,
            }
        }
        "ori" => {
            want(3)?;
            Instr::Ori {
                rd: parse_reg(args[0])?,
                rs1: parse_reg(args[1])?,
                imm: parse_u16(args[2])?,
            }
        }
        "xori" => {
            want(3)?;
            Instr::Xori {
                rd: parse_reg(args[0])?,
                rs1: parse_reg(args[1])?,
                imm: parse_u16(args[2])?,
            }
        }
        "slli" | "srli" | "srai" => {
            want(3)?;
            let rd = parse_reg(args[0])?;
            let rs1 = parse_reg(args[1])?;
            let shamt = parse_u32(args[2])
                .filter(|&s| s < 32)
                .ok_or("bad shift amount")? as u8;
            match mnemonic.as_str() {
                "slli" => Instr::Slli { rd, rs1, shamt },
                "srli" => Instr::Srli { rd, rs1, shamt },
                _ => Instr::Srai { rd, rs1, shamt },
            }
        }
        "lui" => {
            want(2)?;
            Instr::Lui {
                rd: parse_reg(args[0])?,
                imm: parse_u16(args[1])?,
            }
        }
        "li" => {
            want(2)?;
            let rd = parse_reg(args[0])?;
            let value = resolve(args[1])?;
            out.push(encode(&Instr::Lui {
                rd,
                imm: (value >> 16) as u16,
            }));
            out.push(encode(&Instr::Ori {
                rd,
                rs1: rd,
                imm: (value & 0xFFFF) as u16,
            }));
            return Ok(());
        }
        "lw" | "lb" | "lbu" => {
            want(2)?;
            let rd = parse_reg(args[0])?;
            let (off, rs1) = parse_mem_operand(args[1])?;
            match mnemonic.as_str() {
                "lw" => Instr::Lw { rd, rs1, off },
                "lb" => Instr::Lb { rd, rs1, off },
                _ => Instr::Lbu { rd, rs1, off },
            }
        }
        "sw" | "sb" => {
            want(2)?;
            let rs2 = parse_reg(args[0])?;
            let (off, rs1) = parse_mem_operand(args[1])?;
            if mnemonic == "sw" {
                Instr::Sw { rs2, rs1, off }
            } else {
                Instr::Sb { rs2, rs1, off }
            }
        }
        "lwa" => {
            want(2)?;
            Instr::Lwa {
                rd: parse_reg(args[0])?,
                addr: parse_bracketed(args[1])?,
            }
        }
        "swa" => {
            want(2)?;
            Instr::Swa {
                rs: parse_reg(args[0])?,
                addr: parse_bracketed(args[1])?,
            }
        }
        "push" => {
            want(1)?;
            Instr::Push {
                rs: parse_reg(args[0])?,
            }
        }
        "pop" => {
            want(1)?;
            Instr::Pop {
                rd: parse_reg(args[0])?,
            }
        }
        "pushf" => {
            want(0)?;
            Instr::Pushf
        }
        "popf" => {
            want(0)?;
            Instr::Popf
        }
        "cmp" => {
            want(2)?;
            Instr::Cmp {
                rs1: parse_reg(args[0])?,
                rs2: parse_reg(args[1])?,
            }
        }
        "cmpi" => {
            want(2)?;
            Instr::Cmpi {
                rs1: parse_reg(args[0])?,
                imm: parse_i16(args[1])?,
            }
        }
        "beq" => branch(|off| Instr::Beq { off })?,
        "bne" => branch(|off| Instr::Bne { off })?,
        "blt" => branch(|off| Instr::Blt { off })?,
        "bge" => branch(|off| Instr::Bge { off })?,
        "bltu" => branch(|off| Instr::Bltu { off })?,
        "bgeu" => branch(|off| Instr::Bgeu { off })?,
        "jmp" => {
            want(1)?;
            Instr::Jmp {
                target: resolve(args[0])?,
            }
        }
        "call" => {
            want(1)?;
            Instr::Call {
                target: resolve(args[0])?,
            }
        }
        "jr" => {
            want(1)?;
            Instr::Jr {
                rs: parse_reg(args[0])?,
            }
        }
        "callr" => {
            want(1)?;
            Instr::Callr {
                rs: parse_reg(args[0])?,
            }
        }
        "ret" => {
            want(0)?;
            Instr::Ret
        }
        "jmem" => {
            want(1)?;
            Instr::Jmem {
                addr: parse_bracketed(args[0])?,
            }
        }
        "trap" => {
            want(1)?;
            Instr::Trap {
                code: parse_u16(args[0])?,
            }
        }
        "halt" => {
            want(0)?;
            Instr::Halt
        }
        "nop" => {
            want(0)?;
            Instr::Nop
        }
        ".word" => {
            want(1)?;
            out.push(parse_u32(args[0]).ok_or("bad .word value")?);
            return Ok(());
        }
        other => return Err(format!("unknown mnemonic `{other}`")),
    };
    out.push(encode(&instr));
    Ok(())
}

fn parse_reg(text: &str) -> Result<Reg, String> {
    let t = text.to_ascii_lowercase();
    if t == "sp" {
        return Ok(Reg::SP);
    }
    t.strip_prefix('r')
        .and_then(|n| n.parse::<u8>().ok())
        .and_then(|n| Reg::try_from(n).ok())
        .ok_or_else(|| format!("unknown register `{text}`"))
}

fn parse_u32(text: &str) -> Option<u32> {
    let t = text.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else if let Some(neg) = t.strip_prefix('-') {
        neg.parse::<u32>()
            .ok()
            .map(|v| (v as i64).wrapping_neg() as u32)
    } else {
        t.parse::<u32>().ok()
    }
}

fn parse_i16(text: &str) -> Result<i16, String> {
    parse_u32(text)
        .and_then(|v| {
            let signed = v as i32;
            // Accept 0xFFFF-style encodings of negative values.
            i16::try_from(signed).ok().or(if v <= 0xFFFF {
                Some(v as u16 as i16)
            } else {
                None
            })
        })
        .ok_or_else(|| format!("immediate `{text}` out of i16 range"))
}

fn parse_u16(text: &str) -> Result<u16, String> {
    parse_u32(text)
        .and_then(|v| u16::try_from(v).ok())
        .ok_or_else(|| format!("immediate `{text}` out of u16 range"))
}

/// Parses `off(reg)` memory operands.
fn parse_mem_operand(text: &str) -> Result<(i16, Reg), String> {
    let open = text
        .find('(')
        .ok_or_else(|| format!("expected `off(reg)`, got `{text}`"))?;
    let close = text
        .rfind(')')
        .ok_or_else(|| format!("missing `)` in `{text}`"))?;
    let off_text = text[..open].trim();
    let off = if off_text.is_empty() {
        0
    } else {
        parse_i16(off_text)?
    };
    let rs1 = parse_reg(text[open + 1..close].trim())?;
    Ok((off, rs1))
}

/// Parses `[addr]` absolute operands.
fn parse_bracketed(text: &str) -> Result<u32, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| format!("expected `[addr]`, got `{text}`"))?;
    parse_u32(inner.trim()).ok_or_else(|| format!("bad address `{inner}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_isa::decode;

    #[test]
    fn assembles_display_syntax() {
        // Round-trip: Display output must be accepted by the assembler.
        let instrs = [
            Instr::Add {
                rd: Reg::R1,
                rs1: Reg::R2,
                rs2: Reg::R3,
            },
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::SP,
                imm: -4,
            },
            Instr::Lw {
                rd: Reg::R2,
                rs1: Reg::SP,
                off: 8,
            },
            Instr::Sw {
                rs2: Reg::R2,
                rs1: Reg::R3,
                off: -12,
            },
            Instr::Lwa {
                rd: Reg::R1,
                addr: 0x200,
            },
            Instr::Swa {
                rs: Reg::R1,
                addr: 0x204,
            },
            Instr::Jmem { addr: 0x104 },
            Instr::Trap { code: 0xF001 },
            Instr::Pushf,
            Instr::Ret,
            Instr::Lui {
                rd: Reg::R4,
                imm: 0xBEEF,
            },
            Instr::Cmpi {
                rs1: Reg::R9,
                imm: -1,
            },
            Instr::Srai {
                rd: Reg::R1,
                rs1: Reg::R1,
                shamt: 7,
            },
        ];
        for want in instrs {
            let code = assemble(0, &want.to_string()).unwrap();
            assert_eq!(decode(code[0]).unwrap(), want, "syntax: {want}");
        }
    }

    #[test]
    fn labels_and_branches() {
        let code = assemble(
            0x1000,
            r"
            start:
                cmpi r1, 0
                beq  done
                jmp  start
            done:
                halt
            ",
        )
        .unwrap();
        assert_eq!(decode(code[1]).unwrap(), Instr::Beq { off: 1 });
        assert_eq!(decode(code[2]).unwrap(), Instr::Jmp { target: 0x1000 });
    }

    #[test]
    fn li_and_call_through_label() {
        let code = assemble(
            0x2000,
            r"
                li r1, 0x12345678
                call fn1
                halt
            fn1:
                ret
            ",
        )
        .unwrap();
        assert_eq!(
            decode(code[0]).unwrap(),
            Instr::Lui {
                rd: Reg::R1,
                imm: 0x1234
            }
        );
        assert_eq!(
            decode(code[1]).unwrap(),
            Instr::Ori {
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: 0x5678
            }
        );
        // fn1 is the 5th word (indices 0..=3 before it) → 0x2010.
        assert_eq!(decode(code[2]).unwrap(), Instr::Call { target: 0x2010 });
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let code = assemble(0, "; file header\n  nop # trailing\n\n  halt\n").unwrap();
        assert_eq!(code.len(), 2);
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble(0, "a:\n nop\na:\n nop\n").unwrap_err();
        assert!(matches!(err, AsmError::Parse { .. }), "{err}");
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let err = assemble(0, "nop\n frobnicate r1\n").unwrap_err();
        match err {
            AsmError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("frobnicate"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn word_directive() {
        let code = assemble(0, ".word 0xCAFEBABE").unwrap();
        assert_eq!(code, vec![0xCAFEBABE]);
    }

    #[test]
    fn negative_hex_and_decimal_immediates() {
        let code = assemble(0, "addi r1, r1, -32768").unwrap();
        assert_eq!(
            decode(code[0]).unwrap(),
            Instr::Addi {
                rd: Reg::R1,
                rs1: Reg::R1,
                imm: -32768
            }
        );
        let code = assemble(0, "cmpi r1, 0xFFFF").unwrap();
        assert_eq!(
            decode(code[0]).unwrap(),
            Instr::Cmpi {
                rs1: Reg::R1,
                imm: -1
            }
        );
    }
}
