//! Property: the text assembler accepts exactly the syntax the ISA's
//! `Display` impl prints — `assemble(instr.to_string())` re-encodes every
//! instruction losslessly.

use proptest::prelude::*;
use strata_asm::assemble;
use strata_isa::{decode, Instr, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::try_from(i).unwrap())
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let r = arb_reg;
    prop_oneof![
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Add { rd, rs1, rs2 }),
        (r(), r(), r()).prop_map(|(rd, rs1, rs2)| Instr::Divu { rd, rs1, rs2 }),
        (r(), r()).prop_map(|(rd, rs)| Instr::Mov { rd, rs }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, imm)| Instr::Addi { rd, rs1, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Andi { rd, rs1, imm }),
        (r(), r(), any::<u16>()).prop_map(|(rd, rs1, imm)| Instr::Xori { rd, rs1, imm }),
        (r(), r(), 0u8..32).prop_map(|(rd, rs1, shamt)| Instr::Srai { rd, rs1, shamt }),
        (r(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, off)| Instr::Lw { rd, rs1, off }),
        (r(), r(), any::<i16>()).prop_map(|(rs2, rs1, off)| Instr::Sw { rs2, rs1, off }),
        (r(), r(), any::<i16>()).prop_map(|(rd, rs1, off)| Instr::Lbu { rd, rs1, off }),
        (r(), (0u32..(1 << 18)).prop_map(|w| w * 4)).prop_map(|(rd, addr)| Instr::Lwa { rd, addr }),
        (r(), (0u32..(1 << 18)).prop_map(|w| w * 4)).prop_map(|(rs, addr)| Instr::Swa { rs, addr }),
        r().prop_map(|rs| Instr::Push { rs }),
        r().prop_map(|rd| Instr::Pop { rd }),
        Just(Instr::Pushf),
        Just(Instr::Popf),
        (r(), r()).prop_map(|(rs1, rs2)| Instr::Cmp { rs1, rs2 }),
        (r(), any::<i16>()).prop_map(|(rs1, imm)| Instr::Cmpi { rs1, imm }),
        any::<i16>().prop_map(|off| Instr::Beq { off }),
        any::<i16>().prop_map(|off| Instr::Bgeu { off }),
        (0u32..(1 << 24)).prop_map(|w| Instr::Jmp { target: w * 4 }),
        (0u32..(1 << 24)).prop_map(|w| Instr::Call { target: w * 4 }),
        r().prop_map(|rs| Instr::Jr { rs }),
        r().prop_map(|rs| Instr::Callr { rs }),
        Just(Instr::Ret),
        (0u32..(1 << 24)).prop_map(|w| Instr::Jmem { addr: w * 4 }),
        any::<u16>().prop_map(|code| Instr::Trap { code }),
        Just(Instr::Halt),
        Just(Instr::Nop),
    ]
}

proptest! {
    #[test]
    fn display_syntax_reassembles(instr in arb_instr()) {
        let text = instr.to_string();
        let words = assemble(0, &text)
            .unwrap_or_else(|e| panic!("`{text}` rejected: {e}"));
        prop_assert_eq!(words.len(), 1, "`{}` produced {} words", text, words.len());
        prop_assert_eq!(decode(words[0]).expect("assembled word decodes"), instr);
    }

    #[test]
    fn whole_programs_roundtrip(instrs in prop::collection::vec(arb_instr(), 1..40)) {
        let text: String = instrs.iter().map(|i| format!("{i}\n")).collect();
        let words = assemble(0x4000, &text).expect("program assembles");
        prop_assert_eq!(words.len(), instrs.len());
        for (word, want) in words.iter().zip(&instrs) {
            prop_assert_eq!(&decode(*word).expect("decodes"), want);
        }
    }
}
