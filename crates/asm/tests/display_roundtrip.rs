//! Randomized test: the text assembler accepts exactly the syntax the
//! ISA's `Display` impl prints — `assemble(instr.to_string())` re-encodes
//! every instruction losslessly. Driven by the repo's deterministic
//! [`SmallRng`] rather than an external property-testing framework.

use strata_asm::assemble;
use strata_isa::{decode, Instr, Reg};
use strata_stats::rng::SmallRng;

fn rand_reg(rng: &mut SmallRng) -> Reg {
    Reg::try_from(rng.gen_range(0u8..16)).unwrap()
}

fn rand_i16(rng: &mut SmallRng) -> i16 {
    rng.gen_range(0u32..0x1_0000) as u16 as i16
}

fn rand_u16(rng: &mut SmallRng) -> u16 {
    rng.gen_range(0u32..0x1_0000) as u16
}

/// Samples across every printable-syntax family the assembler must parse.
fn rand_instr(rng: &mut SmallRng) -> Instr {
    let r = |rng: &mut SmallRng| rand_reg(rng);
    match rng.gen_range(0u32..30) {
        0 => Instr::Add {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        1 => Instr::Divu {
            rd: r(rng),
            rs1: r(rng),
            rs2: r(rng),
        },
        2 => Instr::Mov {
            rd: r(rng),
            rs: r(rng),
        },
        3 => Instr::Addi {
            rd: r(rng),
            rs1: r(rng),
            imm: rand_i16(rng),
        },
        4 => Instr::Andi {
            rd: r(rng),
            rs1: r(rng),
            imm: rand_u16(rng),
        },
        5 => Instr::Xori {
            rd: r(rng),
            rs1: r(rng),
            imm: rand_u16(rng),
        },
        6 => Instr::Srai {
            rd: r(rng),
            rs1: r(rng),
            shamt: rng.gen_range(0u8..32),
        },
        7 => Instr::Lui {
            rd: r(rng),
            imm: rand_u16(rng),
        },
        8 => Instr::Lw {
            rd: r(rng),
            rs1: r(rng),
            off: rand_i16(rng),
        },
        9 => Instr::Sw {
            rs2: r(rng),
            rs1: r(rng),
            off: rand_i16(rng),
        },
        10 => Instr::Lbu {
            rd: r(rng),
            rs1: r(rng),
            off: rand_i16(rng),
        },
        11 => Instr::Lwa {
            rd: r(rng),
            addr: rng.gen_range(0u32..(1 << 18)) * 4,
        },
        12 => Instr::Swa {
            rs: r(rng),
            addr: rng.gen_range(0u32..(1 << 18)) * 4,
        },
        13 => Instr::Push { rs: r(rng) },
        14 => Instr::Pop { rd: r(rng) },
        15 => Instr::Pushf,
        16 => Instr::Popf,
        17 => Instr::Cmp {
            rs1: r(rng),
            rs2: r(rng),
        },
        18 => Instr::Cmpi {
            rs1: r(rng),
            imm: rand_i16(rng),
        },
        19 => Instr::Beq { off: rand_i16(rng) },
        20 => Instr::Bgeu { off: rand_i16(rng) },
        21 => Instr::Jmp {
            target: rng.gen_range(0u32..(1 << 24)) * 4,
        },
        22 => Instr::Call {
            target: rng.gen_range(0u32..(1 << 24)) * 4,
        },
        23 => Instr::Jr { rs: r(rng) },
        24 => Instr::Callr { rs: r(rng) },
        25 => Instr::Ret,
        26 => Instr::Jmem {
            addr: rng.gen_range(0u32..(1 << 24)) * 4,
        },
        27 => Instr::Trap {
            code: rand_u16(rng),
        },
        28 => Instr::Halt,
        _ => Instr::Nop,
    }
}

#[test]
fn display_syntax_reassembles() {
    let mut rng = SmallRng::seed_from_u64(0xA53B_0001);
    for _ in 0..10_000 {
        let instr = rand_instr(&mut rng);
        let text = instr.to_string();
        let words = assemble(0, &text).unwrap_or_else(|e| panic!("`{text}` rejected: {e}"));
        assert_eq!(words.len(), 1, "`{text}` produced {} words", words.len());
        assert_eq!(decode(words[0]).expect("assembled word decodes"), instr);
    }
}

#[test]
fn whole_programs_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0xA53B_0002);
    for _ in 0..200 {
        let instrs: Vec<Instr> = (0..rng.gen_range(1usize..40))
            .map(|_| rand_instr(&mut rng))
            .collect();
        let text: String = instrs.iter().map(|i| format!("{i}\n")).collect();
        let words = assemble(0x4000, &text).expect("program assembles");
        assert_eq!(words.len(), instrs.len());
        for (word, want) in words.iter().zip(&instrs) {
            assert_eq!(&decode(*word).expect("decodes"), want);
        }
    }
}
