//! Property tests for the statistics toolkit.

use proptest::prelude::*;
use strata_stats::{geomean, mean, ratio, Histogram, Table};

proptest! {
    #[test]
    fn geomean_is_bounded_by_min_and_max(values in prop::collection::vec(0.001f64..1e6, 1..50)) {
        let g = geomean(values.iter().copied()).expect("nonempty positive input");
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(g >= min * 0.999_999 && g <= max * 1.000_001, "{min} <= {g} <= {max}");
    }

    #[test]
    fn geomean_of_constant_is_constant(v in 0.01f64..1e4, n in 1usize..20) {
        let g = geomean(std::iter::repeat(v).take(n)).unwrap();
        prop_assert!((g - v).abs() / v < 1e-9);
    }

    #[test]
    fn mean_bounded(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let m = mean(values.iter().copied()).unwrap();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-6 && m <= max + 1e-6);
    }

    #[test]
    fn ratio_never_nan(n in any::<u64>(), d in any::<u64>()) {
        let r = ratio(n, d);
        prop_assert!(!r.is_nan());
    }

    #[test]
    fn histogram_percentiles_are_monotone(samples in prop::collection::vec(0usize..64, 1..200)) {
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        let mut last = 0usize;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p).expect("nonempty");
            prop_assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
        prop_assert_eq!(h.percentile(100.0), h.max());
        prop_assert_eq!(h.count(), samples.len() as u64);
        let expected_mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        prop_assert!((h.mean() - expected_mean).abs() < 1e-9);
    }

    #[test]
    fn table_csv_has_one_line_per_row(
        rows in prop::collection::vec(prop::collection::vec("[a-z0-9,\"]{0,8}", 2..=2), 0..20),
    ) {
        let mut t = Table::new("p", &["a", "b"]);
        for row in &rows {
            t.row(row.clone());
        }
        let csv = t.render_csv();
        // Header + one line per row; quoted cells never add raw newlines.
        prop_assert_eq!(csv.lines().count(), rows.len() + 1);
        prop_assert_eq!(t.len(), rows.len());
    }
}
