//! Randomized tests for the statistics toolkit, driven by the crate's own
//! deterministic [`SmallRng`].

use strata_stats::rng::SmallRng;
use strata_stats::{geomean, mean, ratio, Histogram, Table};

fn rand_f64(rng: &mut SmallRng, lo: f64, hi: f64) -> f64 {
    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    lo + unit * (hi - lo)
}

#[test]
fn geomean_is_bounded_by_min_and_max() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0001);
    for _ in 0..200 {
        let values: Vec<f64> = (0..rng.gen_range(1usize..50))
            .map(|_| rand_f64(&mut rng, 0.001, 1e6))
            .collect();
        let g = geomean(values.iter().copied()).expect("nonempty positive input");
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(0.0f64, f64::max);
        assert!(
            g >= min * 0.999_999 && g <= max * 1.000_001,
            "{min} <= {g} <= {max}"
        );
    }
}

#[test]
fn geomean_of_constant_is_constant() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0002);
    for _ in 0..200 {
        let v = rand_f64(&mut rng, 0.01, 1e4);
        let n = rng.gen_range(1usize..20);
        let g = geomean(std::iter::repeat_n(v, n)).unwrap();
        assert!((g - v).abs() / v < 1e-9);
    }
}

#[test]
fn mean_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0003);
    for _ in 0..200 {
        let values: Vec<f64> = (0..rng.gen_range(1usize..50))
            .map(|_| rand_f64(&mut rng, -1e6, 1e6))
            .collect();
        let m = mean(values.iter().copied()).unwrap();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(m >= min - 1e-6 && m <= max + 1e-6);
    }
}

#[test]
fn ratio_never_nan() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0004);
    for _ in 0..1000 {
        let r = ratio(rng.next_u64(), rng.next_u64());
        assert!(!r.is_nan());
    }
    assert!(!ratio(0, 0).is_nan());
    assert!(!ratio(u64::MAX, 0).is_nan());
}

#[test]
fn histogram_percentiles_are_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0005);
    for _ in 0..100 {
        let samples: Vec<usize> = (0..rng.gen_range(1usize..200))
            .map(|_| rng.gen_range(0usize..64))
            .collect();
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        let mut last = 0usize;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p).expect("nonempty");
            assert!(v >= last, "percentile({p}) = {v} < {last}");
            last = v;
        }
        assert_eq!(h.percentile(100.0), h.max());
        assert_eq!(h.count(), samples.len() as u64);
        let expected_mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!((h.mean() - expected_mean).abs() < 1e-9);
    }
}

#[test]
fn table_csv_has_one_line_per_row() {
    let mut rng = SmallRng::seed_from_u64(0x57A7_0006);
    let alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz0123456789,\"".chars().collect();
    for _ in 0..100 {
        let n_rows = rng.gen_range(0usize..20);
        let rows: Vec<Vec<String>> = (0..n_rows)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        (0..rng.gen_range(0usize..9))
                            .map(|_| alphabet[rng.gen_range(0usize..alphabet.len())])
                            .collect::<String>()
                    })
                    .collect()
            })
            .collect();
        let mut t = Table::new("p", &["a", "b"]);
        for row in &rows {
            t.row(row.clone());
        }
        let csv = t.render_csv();
        // Header + one line per row; quoted cells never add raw newlines.
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert_eq!(t.len(), rows.len());
    }
}
