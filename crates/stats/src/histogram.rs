/// A growable histogram over small non-negative integer samples.
///
/// Used for distributions like sieve probe-chain lengths and IBTC probe
/// counts, where the interesting statistics are the mean and the tail.
///
/// ```
/// use strata_stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(1);
/// h.record(1);
/// h.record(4);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.mean(), 2.0);
/// assert_eq!(h.max(), Some(4));
/// assert_eq!(h.percentile(50.0), Some(1));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: usize) {
        if value >= self.buckets.len() {
            self.buckets.resize(value + 1, 0);
        }
        self.buckets[value] += 1;
        self.count += 1;
        self.sum += value as u64;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// The smallest value `v` such that at least `p` percent of samples are
    /// `<= v`; `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> Option<usize> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.count == 0 {
            return None;
        }
        let threshold = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (value, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= threshold {
                return Some(value);
            }
        }
        self.max()
    }

    /// Iterates over `(value, count)` pairs with nonzero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(99.0), None);
    }

    #[test]
    fn percentiles() {
        let mut h = Histogram::new();
        for v in [0, 0, 0, 0, 0, 0, 0, 0, 0, 10] {
            h.record(v);
        }
        assert_eq!(h.percentile(90.0), Some(0));
        assert_eq!(h.percentile(100.0), Some(10));
        assert_eq!(h.percentile(0.0), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_percentile_panics() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn iter_skips_zeros() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(5);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(2, 1), (5, 1)]);
    }
}
