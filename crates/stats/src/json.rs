//! A hand-rolled JSON writer for machine-readable experiment artifacts.
//!
//! The experiment orchestrator (`strata-expt`) emits every table and figure
//! as JSON alongside the aligned-text and CSV renderings; `serde` is not
//! available in the offline build environment, so this module implements the
//! small subset needed: a [`Json`] value tree with deterministic member
//! ordering and a standards-compliant serializer (RFC 8259 string escaping,
//! shortest-roundtrip float formatting via Rust's `{}`).
//!
//! ```
//! use strata_stats::Json;
//! let doc = Json::obj([
//!     ("id", Json::str("fig4")),
//!     ("slowdowns", Json::arr([Json::num(1.5), Json::num(2.0)])),
//! ]);
//! assert_eq!(doc.render(), r#"{"id":"fig4","slowdowns":[1.5,2]}"#);
//! ```

use crate::Table;

/// A JSON value. Objects preserve insertion order so rendered artifacts are
/// byte-stable across runs — a requirement for the orchestrator's
/// parallel-equals-serial determinism guarantee.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number. Non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// An unsigned integer, kept separate from `Num` so u64 counters larger
    /// than 2^53 render exactly.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An unsigned integer value, rendered without a decimal point.
    pub fn uint(v: u64) -> Json {
        Json::UInt(v)
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation, ending without a newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_f64(*v, out),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` prints the shortest string that round-trips; integral values
        // print without a fraction, which is valid JSON.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Table {
    /// Renders the table as a JSON object `{title, columns, rows}` with
    /// rows as arrays of strings (cell formatting is part of the table's
    /// contract; numeric reinterpretation is the consumer's choice).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::str(self.title())),
            ("columns", Json::arr(self.column_names().iter().map(Json::str))),
            (
                "rows",
                Json::arr(
                    self.rows_as_cells()
                        .iter()
                        .map(|row| Json::arr(row.iter().map(Json::str))),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::num(1.5).render(), "1.5");
        assert_eq!(Json::num(2.0).render(), "2");
        assert_eq!(Json::uint(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::num(f64::NAN).render(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(Json::str("a\"b\\c\nd\te\u{1}").render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Json::str("unicode ✓").render(), "\"unicode ✓\"");
    }

    #[test]
    fn nesting_and_order() {
        let doc = Json::obj([
            ("z", Json::uint(1)),
            ("a", Json::arr([Json::Null, Json::str("x")])),
        ]);
        assert_eq!(doc.render(), r#"{"z":1,"a":[null,"x"]}"#);
    }

    #[test]
    fn pretty_is_reparseable_shape() {
        let doc = Json::obj([("k", Json::arr([Json::uint(1), Json::uint(2)]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"k\": [\n"));
        assert!(pretty.ends_with('}'));
        assert_eq!(Json::obj::<&str>([]).render_pretty(), "{}");
        assert_eq!(Json::arr([]).render_pretty(), "[]");
    }

    #[test]
    fn table_to_json() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(["gzip", "1.5"]);
        assert_eq!(
            t.to_json().render(),
            r#"{"title":"demo","columns":["name","value"],"rows":[["gzip","1.5"]]}"#
        );
    }
}
