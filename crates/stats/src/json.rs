//! A hand-rolled JSON writer for machine-readable experiment artifacts.
//!
//! The experiment orchestrator (`strata-expt`) emits every table and figure
//! as JSON alongside the aligned-text and CSV renderings; `serde` is not
//! available in the offline build environment, so this module implements the
//! small subset needed: a [`Json`] value tree with deterministic member
//! ordering and a standards-compliant serializer (RFC 8259 string escaping,
//! shortest-roundtrip float formatting via Rust's `{}`).
//!
//! ```
//! use strata_stats::Json;
//! let doc = Json::obj([
//!     ("id", Json::str("fig4")),
//!     ("slowdowns", Json::arr([Json::num(1.5), Json::num(2.0)])),
//! ]);
//! assert_eq!(doc.render(), r#"{"id":"fig4","slowdowns":[1.5,2]}"#);
//! ```

use crate::Table;

/// A JSON value. Objects preserve insertion order so rendered artifacts are
/// byte-stable across runs — a requirement for the orchestrator's
/// parallel-equals-serial determinism guarantee.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number. Non-finite values render as `null` (JSON has no
    /// NaN/Infinity).
    Num(f64),
    /// An unsigned integer, kept separate from `Num` so u64 counters larger
    /// than 2^53 render exactly.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// An unsigned integer value, rendered without a decimal point.
    pub fn uint(v: u64) -> Json {
        Json::UInt(v)
    }

    /// An array from any iterator of values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation, ending without a newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_f64(*v, out),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl Json {
    /// Parses a JSON document (RFC 8259 subset matching what [`Json`]
    /// renders). Integer tokens without sign, fraction, or exponent become
    /// [`Json::UInt`]; every other number becomes [`Json::Num`].
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object member lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value as `f64` (covers both [`Json::Num`] and
    /// [`Json::UInt`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs encode characters above U+FFFF.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(&b) if b < 0x20 => return Err(self.err("raw control character")),
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // boundary math is safe).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut integral = true;
        if self.bytes.get(self.pos) == Some(&b'-') {
            integral = false;
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(v) = token.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        match token.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(format!("bad number `{token}` at byte {start}")),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{}` prints the shortest string that round-trips; integral values
        // print without a fraction, which is valid JSON.
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Table {
    /// Renders the table as a JSON object `{title, columns, rows}` with
    /// rows as arrays of strings (cell formatting is part of the table's
    /// contract; numeric reinterpretation is the consumer's choice).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("title", Json::str(self.title())),
            (
                "columns",
                Json::arr(self.column_names().iter().map(Json::str)),
            ),
            (
                "rows",
                Json::arr(
                    self.rows_as_cells()
                        .iter()
                        .map(|row| Json::arr(row.iter().map(Json::str))),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::num(1.5).render(), "1.5");
        assert_eq!(Json::num(2.0).render(), "2");
        assert_eq!(Json::uint(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::num(f64::NAN).render(), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001\""
        );
        assert_eq!(Json::str("unicode ✓").render(), "\"unicode ✓\"");
    }

    #[test]
    fn nesting_and_order() {
        let doc = Json::obj([
            ("z", Json::uint(1)),
            ("a", Json::arr([Json::Null, Json::str("x")])),
        ]);
        assert_eq!(doc.render(), r#"{"z":1,"a":[null,"x"]}"#);
    }

    #[test]
    fn pretty_is_reparseable_shape() {
        let doc = Json::obj([("k", Json::arr([Json::uint(1), Json::uint(2)]))]);
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"k\": [\n"));
        assert!(pretty.ends_with('}'));
        assert_eq!(Json::obj::<&str>([]).render_pretty(), "{}");
        assert_eq!(Json::arr([]).render_pretty(), "[]");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::obj([
            ("id", Json::str("fig4")),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("count", Json::uint(18446744073709551615)),
            ("ratio", Json::num(1.503)),
            ("neg", Json::num(-2.5)),
            (
                "rows",
                Json::arr([Json::str("a\"b\\c\nd"), Json::str("unicode ✓")]),
            ),
            ("empty_arr", Json::arr([])),
            ("empty_obj", Json::obj::<&str>([])),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parse_number_classes() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("-3").unwrap(), Json::Num(-3.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn parse_escapes() {
        assert_eq!(
            Json::parse(r#""a\u0041\n\t\\\" \u00e9""#).unwrap(),
            Json::str("aA\n\t\\\" é")
        );
        // Surrogate pair for U+1F600.
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::str("😀"));
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "[1] extra",
            "{\"a\" 1}",
            "\"\\q\"",
            "\"\\ud83d\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"id":"x","n":2,"arr":[1,2]}"#).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            doc.get("arr").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
        assert!(Json::Null.get("id").is_none());
    }

    #[test]
    fn table_to_json() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(["gzip", "1.5"]);
        assert_eq!(
            t.to_json().render(),
            r#"{"title":"demo","columns":["name","value"],"rows":[["gzip","1.5"]]}"#
        );
    }
}
