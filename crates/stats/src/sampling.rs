//! Estimators for stratified (SimPoint-style) sampled measurement.
//!
//! Sampled execution measures each phase cluster at a few representative
//! intervals and extrapolates: the population estimate is the
//! cluster-weighted mean, and its confidence interval comes from the
//! classical stratified-sampling variance formula — within-cluster sample
//! variance scaled by the squared cluster weight. Clusters measured at a
//! single point contribute no variance term (their within-cluster spread
//! is unobservable), so intervals are honest only when most clusters carry
//! at least two samples; the SimPoint selector pairs every representative
//! with a runner-up for exactly this reason.

/// A point estimate with a symmetric 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The weighted point estimate.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
}

impl Estimate {
    /// Lower edge of the interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.ci95
    }

    /// Upper edge of the interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.ci95
    }

    /// Whether `value` falls inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo() && value <= self.hi()
    }

    /// Relative error of this estimate against a known true value
    /// (`|mean - truth| / truth`); 0.0 when both are zero, infinite when
    /// only the truth is.
    pub fn rel_error(&self, truth: f64) -> f64 {
        if truth == 0.0 {
            if self.mean == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.mean - truth).abs() / truth.abs()
        }
    }
}

/// One measured stratum: a phase cluster's share of the population and the
/// per-interval measurements taken inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct Stratum {
    /// The cluster's fraction of all intervals (weights need not be
    /// pre-normalized; the estimator normalizes).
    pub weight: f64,
    /// Measurements at this cluster's sampled intervals.
    pub samples: Vec<f64>,
}

/// Weighted arithmetic mean of `(value, weight)` pairs.
///
/// `None` when the total weight is zero (no positive-weight values).
///
/// ```
/// use strata_stats::weighted_mean;
/// let m = weighted_mean([(1.0, 3.0), (5.0, 1.0)]).unwrap();
/// assert!((m - 2.0).abs() < 1e-12);
/// assert_eq!(weighted_mean([(1.0, 0.0)]), None);
/// ```
pub fn weighted_mean<I>(pairs: I) -> Option<f64>
where
    I: IntoIterator<Item = (f64, f64)>,
{
    let mut sum = 0.0;
    let mut total_w = 0.0;
    for (v, w) in pairs {
        if w > 0.0 {
            sum += v * w;
            total_w += w;
        }
    }
    if total_w > 0.0 {
        Some(sum / total_w)
    } else {
        None
    }
}

/// Stratified estimate of a population mean from per-cluster samples.
///
/// mean = Σ wᶜ·x̄ᶜ, var = Σ wᶜ²·sᶜ²/nᶜ, ci95 = 1.96·√var, with weights
/// normalized to sum to one. Empty strata and non-positive weights are
/// skipped; `None` when nothing remains.
///
/// ```
/// use strata_stats::{stratified_estimate, Stratum};
/// let est = stratified_estimate(&[
///     Stratum { weight: 0.75, samples: vec![10.0, 12.0] },
///     Stratum { weight: 0.25, samples: vec![40.0, 40.0] },
/// ])
/// .unwrap();
/// assert!((est.mean - 18.25).abs() < 1e-9);
/// assert!(est.contains(18.25));
/// ```
pub fn stratified_estimate(strata: &[Stratum]) -> Option<Estimate> {
    let total_w: f64 = strata
        .iter()
        .filter(|s| s.weight > 0.0 && !s.samples.is_empty())
        .map(|s| s.weight)
        .sum();
    if total_w <= 0.0 {
        return None;
    }
    let mut mean = 0.0;
    let mut var = 0.0;
    for s in strata {
        if s.weight <= 0.0 || s.samples.is_empty() {
            continue;
        }
        let w = s.weight / total_w;
        let n = s.samples.len() as f64;
        let m = s.samples.iter().sum::<f64>() / n;
        mean += w * m;
        if s.samples.len() > 1 {
            let ss: f64 = s.samples.iter().map(|x| (x - m) * (x - m)).sum();
            let sample_var = ss / (n - 1.0);
            var += w * w * sample_var / n;
        }
    }
    Some(Estimate {
        mean,
        ci95: 1.96 * var.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_mean_matches_plain_mean_on_equal_weights() {
        let m = weighted_mean([(1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_skips_nonpositive_weights() {
        let m = weighted_mean([(100.0, -1.0), (7.0, 2.0)]).unwrap();
        assert!((m - 7.0).abs() < 1e-12);
    }

    #[test]
    fn stratified_point_estimate_is_weight_normalized() {
        // Weights 3:1, unnormalized.
        let est = stratified_estimate(&[
            Stratum {
                weight: 3.0,
                samples: vec![10.0],
            },
            Stratum {
                weight: 1.0,
                samples: vec![50.0],
            },
        ])
        .unwrap();
        assert!((est.mean - 20.0).abs() < 1e-9);
        // Single-sample strata contribute no variance.
        assert_eq!(est.ci95, 0.0);
    }

    #[test]
    fn stratified_variance_shrinks_with_more_samples() {
        let spread = |n: usize| {
            let samples: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 1.0 } else { 3.0 }).collect();
            stratified_estimate(&[Stratum {
                weight: 1.0,
                samples,
            }])
            .unwrap()
            .ci95
        };
        assert!(spread(16) < spread(4));
        assert!(spread(4) > 0.0);
    }

    #[test]
    fn interval_covers_truth_on_homogeneous_clusters() {
        // Clusters internally uniform: the estimate is exact and the
        // interval collapses around it.
        let est = stratified_estimate(&[
            Stratum {
                weight: 0.5,
                samples: vec![4.0, 4.0, 4.0],
            },
            Stratum {
                weight: 0.5,
                samples: vec![8.0, 8.0],
            },
        ])
        .unwrap();
        assert!((est.mean - 6.0).abs() < 1e-12);
        assert_eq!(est.ci95, 0.0);
        assert!(est.contains(6.0));
    }

    #[test]
    fn empty_and_zero_weight_strata_yield_none() {
        assert_eq!(stratified_estimate(&[]), None);
        assert_eq!(
            stratified_estimate(&[Stratum {
                weight: 0.0,
                samples: vec![1.0],
            }]),
            None
        );
        assert_eq!(
            stratified_estimate(&[Stratum {
                weight: 1.0,
                samples: vec![],
            }]),
            None
        );
    }

    #[test]
    fn rel_error_handles_zero_truth() {
        let e = Estimate {
            mean: 0.0,
            ci95: 0.0,
        };
        assert_eq!(e.rel_error(0.0), 0.0);
        let e = Estimate {
            mean: 1.0,
            ci95: 0.0,
        };
        assert!(e.rel_error(0.0).is_infinite());
        assert!((e.rel_error(2.0) - 0.5).abs() < 1e-12);
    }
}
