/// A titled, column-aligned table with text, CSV, and Markdown renderers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers, in order.
    pub fn column_names(&self) -> &[String] {
        &self.columns
    }

    /// The data rows as raw cells (each row padded to the column count).
    pub fn rows_as_cells(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row. Shorter rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than the table has columns.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.columns.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.columns.len()
        );
        row.resize(self.columns.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders the table as aligned text with a title line.
    pub fn render_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align the rest.
                if looks_numeric(cell) {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.columns));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header row first).
    pub fn render_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as GitHub-flavored Markdown.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

fn looks_numeric(cell: &str) -> bool {
    if cell.is_empty() {
        return false;
    }
    if let Some(hex) = cell.strip_prefix("0x") {
        return !hex.is_empty() && hex.chars().all(|c| c.is_ascii_hexdigit());
    }
    cell.chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | '%' | 'x' | 'e'))
        && cell.chars().any(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("t", &["name", "value"]);
        t.row(["alpha", "1.50"]);
        t.row(["b", "10.25"]);
        t
    }

    #[test]
    fn text_alignment() {
        let text = sample().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "== t ==");
        // Numbers right-aligned under the value column.
        assert!(lines[3].ends_with(" 1.50"));
        assert!(lines[4].ends_with("10.25"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["x,y", "quo\"te"]);
        let csv = t.render_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"quo\"\"te\"\n");
    }

    #[test]
    fn markdown_shape() {
        let md = sample().render_markdown();
        assert!(md.contains("| name | value |"));
        assert!(md.contains("|---|---|"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("t", &["a", "b", "c"]);
        t.row(["only"]);
        assert_eq!(t.len(), 1);
        assert!(t.render_csv().contains("only,,"));
    }

    #[test]
    #[should_panic(expected = "row has 3 cells")]
    fn long_rows_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["1", "2", "3"]);
    }

    #[test]
    fn empty_table() {
        let t = Table::new("t", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.render_csv(), "a\n");
    }
}
