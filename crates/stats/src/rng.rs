//! A small, dependency-free deterministic pseudo-random number generator.
//!
//! The workload generators and the randomized test suites need a seedable,
//! reproducible random stream; the build environment is offline, so this
//! module replaces the external `rand` crate with a SplitMix64 generator
//! (Steele, Lea & Flood, OOPSLA 2014). SplitMix64 passes BigCrush for the
//! 64-bit output sizes used here and, crucially, is *stable*: the stream
//! for a given seed is part of the repo's determinism contract (workload
//! checksums derive from it).
//!
//! ```
//! use strata_stats::rng::SmallRng;
//! let mut a = SmallRng::seed_from_u64(7);
//! let mut b = SmallRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.gen_range(10u32..20) < 20);
//! ```

use std::ops::Range;

/// Deterministic SplitMix64 generator.
///
/// The name mirrors `rand::rngs::SmallRng` so call sites read identically;
/// unlike the external crate, the stream is guaranteed stable across
/// versions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams, forever.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: RngInt>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "gen_range called with an empty range");
        let span = hi - lo;
        // Multiply-shift range reduction (Lemire); bias is < 2^-64 per
        // sample, far below anything these workloads can observe.
        let r = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo + r)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        // 53 uniform mantissa bits, the same construction rand uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Integer types [`SmallRng::gen_range`] can sample. All sampling is done
/// in `u64` space; implementors guarantee lossless round-trips for the
/// values they admit in ranges.
pub trait RngInt: Copy {
    /// Widens to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrows a sampled value back (always in range by construction).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_rng_int {
    ($($t:ty),*) => {$(
        impl RngInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_rng_int!(u8, u16, u32, u64, usize, i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_stable() {
        // Frozen reference values: changing the generator changes every
        // workload checksum, so drift must be deliberate.
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        let mut rng = SmallRng::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 0xBDD7_3226_2FEB_6E95);
    }

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SmallRng::seed_from_u64(123);
        let mut b = SmallRng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0usize..3);
            assert!(w < 3);
            let x = rng.gen_range(1..6); // i32, like rand's default inference
            assert!((1..6).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (4_000..6_000).contains(&hits),
            "p=0.5 produced {hits}/10000"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).gen_range(5u32..5);
    }
}
