//! Baseline snapshots and regression diffing.
//!
//! The experiment orchestrator emits every table and figure as a JSON
//! artifact (`results/*.json`); committing a set of those artifacts under
//! `results/baseline/` pins the reproduction's numbers. This module loads
//! such a snapshot, matches it against a fresh run — experiments by id,
//! tables by title, rows by their first-column label, columns by name —
//! and reports every metric that drifted, failing the gate when any
//! numeric delta exceeds the tolerance or a compared structure changed
//! shape.
//!
//! Matching is intersection-based: experiments (or rows) present only in
//! the baseline are reported as *skipped* rather than failed, so a
//! filtered run (`strata bench --filter fig4 --baseline …`) can still be
//! gated against a full-suite snapshot. The skip counts appear in the
//! summary so a silently shrinking suite stays visible.
//!
//! Numeric cells are compared after stripping the renderers' unit
//! suffixes (`1.503x`, `12.34%`, `1.20 µs`); everything else must match
//! byte-for-byte.

use std::path::Path;

use crate::{Json, Table};

/// One table of a parsed artifact document.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDoc {
    /// Table title (the match key within an experiment).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Rows as raw cells.
    pub rows: Vec<Vec<String>>,
}

/// One parsed artifact document (`{id, tables: [{title, columns, rows}]}`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentDoc {
    /// Experiment id (`table1`, `fig4`, `cells`, `microbench`, …).
    pub id: String,
    /// Rendered workload parameters, compared as an opaque string.
    pub params: String,
    /// The experiment's tables.
    pub tables: Vec<TableDoc>,
}

/// A set of artifact documents, either loaded from a committed baseline
/// directory or built from a fresh run's artifacts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Documents in load order.
    pub experiments: Vec<ExperimentDoc>,
}

impl Snapshot {
    /// Builds a snapshot from `(source_name, json_text)` documents — the
    /// shape of a suite report's artifact list.
    ///
    /// # Errors
    ///
    /// Returns the source name and parse error of the first bad document.
    pub fn from_documents<'a>(
        docs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<Snapshot, String> {
        let mut experiments = Vec::new();
        for (name, text) in docs {
            let value = Json::parse(text).map_err(|e| format!("{name}: {e}"))?;
            experiments.push(parse_doc(name, &value).ok_or_else(|| {
                format!("{name}: not an artifact document (want {{id, tables}})")
            })?);
        }
        Ok(Snapshot { experiments })
    }

    /// Loads every `*.json` file under `dir` (sorted by file name).
    ///
    /// # Errors
    ///
    /// Fails when the directory is unreadable, contains no `*.json`
    /// files, or any file fails to parse.
    pub fn load_dir(dir: &Path) -> Result<Snapshot, String> {
        let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(format!("no *.json baseline files under {}", dir.display()));
        }
        let mut texts = Vec::new();
        for path in paths {
            let name = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("read {}: {e}", path.display()))?;
            texts.push((name, text));
        }
        Snapshot::from_documents(texts.iter().map(|(n, t)| (n.as_str(), t.as_str())))
    }

    fn get(&self, id: &str) -> Option<&ExperimentDoc> {
        self.experiments.iter().find(|e| e.id == id)
    }
}

fn parse_doc(source: &str, value: &Json) -> Option<ExperimentDoc> {
    let id = match value.get("id").and_then(Json::as_str) {
        Some(id) => id.to_string(),
        // Fall back to the file stem so hand-written fixtures work.
        None => source.strip_suffix(".json").unwrap_or(source).to_string(),
    };
    let params = value.get("params").map(Json::render).unwrap_or_default();
    let mut tables = Vec::new();
    for t in value.get("tables")?.as_arr()? {
        let columns: Option<Vec<String>> = t
            .get("columns")?
            .as_arr()?
            .iter()
            .map(|c| c.as_str().map(str::to_string))
            .collect();
        let rows: Option<Vec<Vec<String>>> = t
            .get("rows")?
            .as_arr()?
            .iter()
            .map(|r| {
                r.as_arr()?
                    .iter()
                    .map(|c| c.as_str().map(str::to_string))
                    .collect()
            })
            .collect();
        tables.push(TableDoc {
            title: t.get("title")?.as_str()?.to_string(),
            columns: columns?,
            rows: rows?,
        });
    }
    Some(ExperimentDoc { id, params, tables })
}

/// One changed metric or shape mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Experiment id.
    pub experiment: String,
    /// Table title.
    pub table: String,
    /// Row label (first cell), empty for table-level mismatches.
    pub row: String,
    /// Column name, empty for table-level mismatches.
    pub column: String,
    /// Baseline cell value (or shape description).
    pub baseline: String,
    /// Fresh cell value (or shape description).
    pub fresh: String,
    /// Percent change for numeric cells; `None` for non-numeric or
    /// shape mismatches.
    pub delta_pct: Option<f64>,
    /// Whether this delta fails the gate.
    pub regressed: bool,
}

/// The outcome of diffing a fresh run against a baseline snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaReport {
    /// The tolerance the diff ran with, in percent.
    pub tolerance_pct: f64,
    /// Every changed cell and shape mismatch, in snapshot order.
    pub deltas: Vec<Delta>,
    /// Numeric cells compared.
    pub compared: u64,
    /// Baseline experiments absent from the fresh run (not gated —
    /// filtered runs legitimately skip experiments).
    pub skipped_experiments: Vec<String>,
    /// Fresh experiments absent from the baseline (not gated).
    pub new_experiments: Vec<String>,
    /// Baseline rows absent from the fresh run, as `experiment/table/row`
    /// (not gated, for the same reason).
    pub skipped_rows: u64,
}

impl DeltaReport {
    /// Number of gate-failing deltas.
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regressed).count()
    }

    /// Whether the gate passes.
    pub fn is_clean(&self) -> bool {
        self.regressions() == 0
    }

    /// Renders the report as aligned text: a summary line, then a table
    /// of every changed cell (worst first).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "baseline gate: {} regression(s), {} drift(s) within tolerance \
             ({} numeric cells compared, tolerance {}%)\n",
            self.regressions(),
            self.deltas.len() - self.regressions(),
            self.compared,
            fmt_f64(self.tolerance_pct),
        );
        if !self.skipped_experiments.is_empty() {
            out.push_str(&format!(
                "skipped (in baseline, not in this run): {}\n",
                self.skipped_experiments.join(", ")
            ));
        }
        if !self.new_experiments.is_empty() {
            out.push_str(&format!(
                "new (in this run, not in baseline): {}\n",
                self.new_experiments.join(", ")
            ));
        }
        if self.skipped_rows > 0 {
            out.push_str(&format!("skipped baseline rows: {}\n", self.skipped_rows));
        }
        if !self.deltas.is_empty() {
            let mut t = Table::new(
                "deltas vs baseline",
                &[
                    "experiment",
                    "table",
                    "row",
                    "column",
                    "baseline",
                    "fresh",
                    "Δ%",
                    "gate",
                ],
            );
            for d in self.sorted_deltas() {
                t.row([
                    d.experiment.as_str(),
                    d.table.as_str(),
                    d.row.as_str(),
                    d.column.as_str(),
                    d.baseline.as_str(),
                    d.fresh.as_str(),
                    &d.delta_pct
                        .map(|p| format!("{p:+.2}"))
                        .unwrap_or_else(|| "—".into()),
                    if d.regressed { "FAIL" } else { "ok" },
                ]);
            }
            out.push_str(&t.render_text());
        }
        out
    }

    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tolerance_pct", Json::num(self.tolerance_pct)),
            ("regressions", Json::uint(self.regressions() as u64)),
            ("compared", Json::uint(self.compared)),
            (
                "skipped_experiments",
                Json::arr(self.skipped_experiments.iter().map(Json::str)),
            ),
            (
                "new_experiments",
                Json::arr(self.new_experiments.iter().map(Json::str)),
            ),
            ("skipped_rows", Json::uint(self.skipped_rows)),
            (
                "deltas",
                Json::arr(self.sorted_deltas().into_iter().map(|d| {
                    Json::obj([
                        ("experiment", Json::str(&d.experiment)),
                        ("table", Json::str(&d.table)),
                        ("row", Json::str(&d.row)),
                        ("column", Json::str(&d.column)),
                        ("baseline", Json::str(&d.baseline)),
                        ("fresh", Json::str(&d.fresh)),
                        (
                            "delta_pct",
                            d.delta_pct.map(Json::num).unwrap_or(Json::Null),
                        ),
                        ("regressed", Json::Bool(d.regressed)),
                    ])
                })),
            ),
        ])
    }

    /// Deltas ordered worst-first: regressions before drifts, larger
    /// percent magnitude first, snapshot order as the tiebreak.
    fn sorted_deltas(&self) -> Vec<&Delta> {
        let mut sorted: Vec<&Delta> = self.deltas.iter().collect();
        sorted.sort_by(|a, b| {
            b.regressed
                .cmp(&a.regressed)
                .then(magnitude(b).total_cmp(&magnitude(a)))
        });
        sorted
    }
}

fn magnitude(d: &Delta) -> f64 {
    d.delta_pct.map(f64::abs).unwrap_or(f64::INFINITY)
}

fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// A cell value parsed into comparable form.
enum Metric {
    /// Numeric after unit-stripping, normalized (ns for durations).
    Number(f64),
    /// Anything else — compared byte-for-byte.
    Text,
}

/// Parses the renderers' numeric cell formats: plain numbers, `1.503x`
/// slowdowns, `12.34%` rates, and `ns`/`µs`/`ms` durations.
fn parse_metric(cell: &str) -> Metric {
    let cell = cell.trim();
    let (token, multiplier) = if let Some(t) = cell.strip_suffix('x') {
        (t, 1.0)
    } else if let Some(t) = cell.strip_suffix('%') {
        (t, 1.0)
    } else if let Some(t) = cell.strip_suffix("ns") {
        (t.trim_end(), 1.0)
    } else if let Some(t) = cell.strip_suffix("µs") {
        (t.trim_end(), 1e3)
    } else if let Some(t) = cell.strip_suffix("ms") {
        (t.trim_end(), 1e6)
    } else {
        (cell, 1.0)
    };
    match token.parse::<f64>() {
        Ok(v) if v.is_finite() => Metric::Number(v * multiplier),
        _ => Metric::Text,
    }
}

/// Diffs `fresh` against `baseline` at `tolerance_pct`.
///
/// Experiments are matched by id, tables by title, rows by first-column
/// label (duplicate labels pair up by occurrence), columns by name.
/// A numeric cell regresses when its percent change exceeds the
/// tolerance in either direction; a non-numeric cell regresses on any
/// change; a baseline table or column missing from the fresh document
/// regresses as a shape mismatch.
pub fn diff(baseline: &Snapshot, fresh: &Snapshot, tolerance_pct: f64) -> DeltaReport {
    let mut report = DeltaReport {
        tolerance_pct,
        deltas: Vec::new(),
        compared: 0,
        skipped_experiments: Vec::new(),
        new_experiments: Vec::new(),
        skipped_rows: 0,
    };
    for base_exp in &baseline.experiments {
        let Some(fresh_exp) = fresh.get(&base_exp.id) else {
            report.skipped_experiments.push(base_exp.id.clone());
            continue;
        };
        diff_experiment(base_exp, fresh_exp, &mut report);
    }
    for fresh_exp in &fresh.experiments {
        if baseline.get(&fresh_exp.id).is_none() {
            report.new_experiments.push(fresh_exp.id.clone());
        }
    }
    report
}

fn shape_delta(report: &mut DeltaReport, experiment: &str, table: &str, base: &str, fresh: &str) {
    report.deltas.push(Delta {
        experiment: experiment.to_string(),
        table: table.to_string(),
        row: String::new(),
        column: String::new(),
        baseline: base.to_string(),
        fresh: fresh.to_string(),
        delta_pct: None,
        regressed: true,
    });
}

fn diff_experiment(base: &ExperimentDoc, fresh: &ExperimentDoc, report: &mut DeltaReport) {
    if base.params != fresh.params {
        shape_delta(
            report,
            &base.id,
            "",
            &format!("params {}", base.params),
            &format!("params {}", fresh.params),
        );
        return; // Different workload params: every number differs trivially.
    }
    for base_table in &base.tables {
        let Some(fresh_table) = fresh.tables.iter().find(|t| t.title == base_table.title) else {
            shape_delta(
                report,
                &base.id,
                &base_table.title,
                "table present",
                "table missing",
            );
            continue;
        };
        diff_table(&base.id, base_table, fresh_table, report);
    }
}

fn diff_table(id: &str, base: &TableDoc, fresh: &TableDoc, report: &mut DeltaReport) {
    // Column name -> index in the fresh table.
    let fresh_col = |name: &str| fresh.columns.iter().position(|c| c == name);
    for column in &base.columns {
        if fresh_col(column).is_none() {
            shape_delta(
                report,
                id,
                &base.title,
                &format!("column `{column}` present"),
                "column missing",
            );
        }
    }
    // Pair rows by (first-cell label, occurrence index) so duplicate
    // labels still line up positionally.
    let occurrence_keys = |rows: &[Vec<String>]| -> Vec<(String, usize)> {
        let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        rows.iter()
            .map(|r| {
                let label = r.first().cloned().unwrap_or_default();
                let n = seen.entry(label.clone()).or_insert(0);
                let key = (label, *n);
                *n += 1;
                key
            })
            .collect()
    };
    let fresh_keys = occurrence_keys(&fresh.rows);
    for (base_row, key) in base.rows.iter().zip(occurrence_keys(&base.rows)) {
        let Some(fresh_row) = fresh_keys
            .iter()
            .position(|k| *k == key)
            .map(|i| &fresh.rows[i])
        else {
            report.skipped_rows += 1;
            continue;
        };
        for (ci, column) in base.columns.iter().enumerate() {
            let Some(fci) = fresh_col(column) else {
                continue;
            };
            let base_cell = base_row.get(ci).map(String::as_str).unwrap_or("");
            let fresh_cell = fresh_row.get(fci).map(String::as_str).unwrap_or("");
            diff_cell(
                id,
                &base.title,
                &key.0,
                column,
                base_cell,
                fresh_cell,
                report,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn diff_cell(
    id: &str,
    table: &str,
    row: &str,
    column: &str,
    base: &str,
    fresh: &str,
    report: &mut DeltaReport,
) {
    let (delta_pct, regressed) = match (parse_metric(base), parse_metric(fresh)) {
        (Metric::Number(b), Metric::Number(f)) => {
            report.compared += 1;
            if b == f {
                return;
            }
            if b == 0.0 {
                // No percentage from a zero base; any change fails.
                (None, true)
            } else {
                let pct = (f - b) / b.abs() * 100.0;
                (Some(pct), pct.abs() > report.tolerance_pct)
            }
        }
        _ => {
            if base == fresh {
                return;
            }
            (None, true)
        }
    };
    report.deltas.push(Delta {
        experiment: id.to_string(),
        table: table.to_string(),
        row: row.to_string(),
        column: column.to_string(),
        baseline: base.to_string(),
        fresh: fresh.to_string(),
        delta_pct,
        regressed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: &str, rows: &[(&str, &str, &str)]) -> String {
        let table = Json::obj([
            ("title", Json::str("metrics")),
            (
                "columns",
                Json::arr(["benchmark", "slowdown", "label"].map(Json::str)),
            ),
            (
                "rows",
                Json::arr(
                    rows.iter()
                        .map(|&(a, b, c)| Json::arr([a, b, c].map(Json::str))),
                ),
            ),
        ]);
        Json::obj([
            ("id", Json::str(id)),
            ("params", Json::obj([("scale", Json::uint(1))])),
            ("tables", Json::arr([table])),
        ])
        .render_pretty()
    }

    fn snapshot(docs: &[(&str, &str)]) -> Snapshot {
        Snapshot::from_documents(docs.iter().copied()).expect("parses")
    }

    #[test]
    fn identical_snapshots_are_clean() {
        let text = doc("fig4", &[("gzip", "1.500x", "a"), ("gcc", "3.000x", "b")]);
        let a = snapshot(&[("fig4.json", &text)]);
        let report = diff(&a, &a.clone(), 5.0);
        assert!(report.is_clean());
        assert!(report.deltas.is_empty());
        assert_eq!(report.compared, 2);
    }

    #[test]
    fn drift_within_tolerance_is_reported_but_clean() {
        let base = snapshot(&[("f.json", &doc("fig4", &[("gzip", "1.000x", "a")]))]);
        let fresh = snapshot(&[("f.json", &doc("fig4", &[("gzip", "1.030x", "a")]))]);
        let report = diff(&base, &fresh, 5.0);
        assert!(report.is_clean());
        assert_eq!(report.deltas.len(), 1);
        let d = &report.deltas[0];
        assert!(!d.regressed);
        assert!((d.delta_pct.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn regression_beyond_tolerance_fails_and_names_experiment() {
        let base = snapshot(&[("f.json", &doc("fig4", &[("gzip", "1.000x", "a")]))]);
        let fresh = snapshot(&[("f.json", &doc("fig4", &[("gzip", "1.100x", "a")]))]);
        let report = diff(&base, &fresh, 5.0);
        assert_eq!(report.regressions(), 1);
        let text = report.render_text();
        assert!(text.contains("fig4"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
        // Improvements beyond tolerance fail too — the numbers are pinned.
        let faster = snapshot(&[("f.json", &doc("fig4", &[("gzip", "0.900x", "a")]))]);
        assert_eq!(diff(&base, &faster, 5.0).regressions(), 1);
    }

    #[test]
    fn tolerance_boundary_is_exclusive() {
        let base = snapshot(&[("f.json", &doc("fig4", &[("gzip", "100", "a")]))]);
        let fresh = snapshot(&[("f.json", &doc("fig4", &[("gzip", "105", "a")]))]);
        assert!(
            diff(&base, &fresh, 5.0).is_clean(),
            "exactly 5% passes a 5% gate"
        );
        assert_eq!(diff(&base, &fresh, 4.9).regressions(), 1);
    }

    #[test]
    fn non_numeric_change_fails() {
        let base = snapshot(&[("f.json", &doc("fig4", &[("gzip", "1.000x", "old")]))]);
        let fresh = snapshot(&[("f.json", &doc("fig4", &[("gzip", "1.000x", "new")]))]);
        let report = diff(&base, &fresh, 50.0);
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.deltas[0].delta_pct, None);
    }

    #[test]
    fn zero_base_change_fails_without_percentage() {
        let base = snapshot(&[("f.json", &doc("t", &[("gzip", "0", "a")]))]);
        let fresh = snapshot(&[("f.json", &doc("t", &[("gzip", "7", "a")]))]);
        let report = diff(&base, &fresh, 99.0);
        assert_eq!(report.regressions(), 1);
        assert_eq!(report.deltas[0].delta_pct, None);
    }

    #[test]
    fn missing_experiment_is_skipped_not_failed() {
        let base = snapshot(&[
            ("a.json", &doc("fig4", &[("gzip", "1.0x", "a")])),
            ("b.json", &doc("fig7", &[("gzip", "2.0x", "a")])),
        ]);
        let fresh = snapshot(&[("a.json", &doc("fig4", &[("gzip", "1.0x", "a")]))]);
        let report = diff(&base, &fresh, 5.0);
        assert!(report.is_clean());
        assert_eq!(report.skipped_experiments, ["fig7"]);
        let reverse = diff(&fresh, &base, 5.0);
        assert_eq!(reverse.new_experiments, ["fig7"]);
    }

    #[test]
    fn missing_table_and_column_are_shape_regressions() {
        let with = doc("fig4", &[("gzip", "1.0x", "a")]);
        let without = Json::obj([
            ("id", Json::str("fig4")),
            ("params", Json::obj([("scale", Json::uint(1))])),
            ("tables", Json::arr([])),
        ])
        .render();
        let base = snapshot(&[("f.json", &with)]);
        let fresh = snapshot(&[("f.json", &without)]);
        assert_eq!(diff(&base, &fresh, 5.0).regressions(), 1);

        let narrower = Json::parse(&with).unwrap();
        // Drop the `label` column from the fresh table.
        let narrower = {
            let table = Json::obj([
                ("title", Json::str("metrics")),
                (
                    "columns",
                    Json::arr(["benchmark", "slowdown"].map(Json::str)),
                ),
                (
                    "rows",
                    Json::arr([Json::arr(["gzip", "1.0x"].map(Json::str))]),
                ),
            ]);
            let mut doc = narrower;
            if let Json::Obj(members) = &mut doc {
                for (k, v) in members.iter_mut() {
                    if k == "tables" {
                        *v = Json::arr([table.clone()]);
                    }
                }
            }
            doc.render()
        };
        let fresh = snapshot(&[("f.json", &narrower)]);
        assert_eq!(
            diff(&base, &fresh, 5.0).regressions(),
            1,
            "missing column fails"
        );
    }

    #[test]
    fn params_mismatch_is_a_single_shape_regression() {
        let base = snapshot(&[("f.json", &doc("fig4", &[("gzip", "1.0x", "a")]))]);
        let other = doc("fig4", &[("gzip", "9.0x", "a")]).replace("\"scale\": 1", "\"scale\": 2");
        let fresh = snapshot(&[("f.json", &other)]);
        let report = diff(&base, &fresh, 5.0);
        assert_eq!(report.regressions(), 1);
        assert!(report.deltas[0].baseline.contains("params"));
    }

    #[test]
    fn duration_units_are_normalized() {
        let base = snapshot(&[(
            "m.json",
            &doc("microbench", &[("isa/encode", "1.00 µs", "")]),
        )]);
        let fresh = snapshot(&[(
            "m.json",
            &doc("microbench", &[("isa/encode", "1020 ns", "")]),
        )]);
        let report = diff(&base, &fresh, 5.0);
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.deltas.len(), 1);
        assert!((report.deltas[0].delta_pct.unwrap() - 2.0).abs() < 1e-9);
        let slow = snapshot(&[(
            "m.json",
            &doc("microbench", &[("isa/encode", "1.20 ms", "")]),
        )]);
        assert_eq!(diff(&base, &slow, 5.0).regressions(), 1);
    }

    #[test]
    fn load_dir_round_trips() {
        let dir = std::env::temp_dir().join(format!("strata-baseline-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("fig4.json"), doc("fig4", &[("gzip", "1.0x", "a")])).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let snap = Snapshot::load_dir(&dir).expect("loads");
        assert_eq!(snap.experiments.len(), 1);
        assert_eq!(snap.experiments[0].id, "fig4");
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(Snapshot::load_dir(&dir).is_err(), "missing dir errors");
    }

    #[test]
    fn report_json_shape() {
        let base = snapshot(&[("f.json", &doc("fig4", &[("gzip", "1.000x", "a")]))]);
        let fresh = snapshot(&[("f.json", &doc("fig4", &[("gzip", "2.000x", "a")]))]);
        let json = diff(&base, &fresh, 5.0).to_json().render();
        assert!(json.contains("\"regressions\":1"), "{json}");
        assert!(json.contains("\"experiment\":\"fig4\""), "{json}");
    }
}
