/// Geometric mean of a sequence of positive values.
///
/// The SPEC convention for summarizing per-benchmark slowdowns. Values that
/// are zero or negative are ignored (they would make the geometric mean
/// undefined); an empty input yields `None`.
///
/// ```
/// use strata_stats::geomean;
/// let g = geomean([2.0, 8.0]).unwrap();
/// assert!((g - 4.0).abs() < 1e-12);
/// assert_eq!(geomean::<[f64; 0]>([]), None);
/// ```
pub fn geomean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Arithmetic mean; `None` for empty input.
///
/// ```
/// use strata_stats::mean;
/// assert_eq!(mean([1.0, 2.0, 3.0]), Some(2.0));
/// ```
pub fn mean<I>(values: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let mut sum = 0.0;
    let mut n = 0u32;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Safe ratio of two counters: `num / den`, or 0.0 when `den` is zero.
///
/// ```
/// use strata_stats::ratio;
/// assert_eq!(ratio(3, 4), 0.75);
/// assert_eq!(ratio(3, 0), 0.0);
/// ```
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_is_scale_invariant() {
        let a = geomean([1.0, 2.0, 4.0]).unwrap();
        let b = geomean([10.0, 20.0, 40.0]).unwrap();
        assert!((b / a - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_skips_nonpositive() {
        assert_eq!(geomean([0.0, -1.0]), None);
        let g = geomean([0.0, 4.0]).unwrap();
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_empty() {
        assert_eq!(mean::<[f64; 0]>([]), None);
    }
}
