//! # strata-stats — small statistics and reporting toolkit
//!
//! Every experiment binary in `strata-bench` renders its table or figure
//! through this crate so the output format is uniform: aligned text for the
//! terminal plus CSV for post-processing. "Figures" are rendered as data
//! tables (one row per x-value, one column per series) — the shape of the
//! curve is what the reproduction compares against the paper.
//!
//! ```
//! use strata_stats::Table;
//! let mut t = Table::new("demo", &["benchmark", "slowdown"]);
//! t.row(["gzip", "1.43"]);
//! t.row(["perlbmk", "3.90"]);
//! let text = t.render_text();
//! assert!(text.contains("perlbmk"));
//! ```

pub mod baseline;
mod histogram;
pub mod json;
pub mod rng;
mod sampling;
mod summary;
mod table;

pub use baseline::{diff, Delta, DeltaReport, Snapshot};
pub use histogram::Histogram;
pub use json::Json;
pub use sampling::{stratified_estimate, weighted_mean, Estimate, Stratum};
pub use summary::{geomean, mean, ratio};
pub use table::Table;
