//! SimPoint selection: weighted representative intervals per phase.
//!
//! Each k-means cluster of BBV intervals elects the interval closest to
//! its centroid as the cluster's simulation point, plus (when the
//! cluster has at least two members) the runner-up as a second sample —
//! two independent draws per phase give the replay layer a within-phase
//! variance estimate, which is what the printed error bars are built
//! from. Weights are interval counts (integers, so the sidecar stays
//! exactly representable and byte-deterministic): the members of a
//! cluster are split across its elected points.
//!
//! The `.simpts` sidecar is a line-oriented text format:
//!
//! ```text
//! strata-simpoints-v1
//! interval 2000
//! intervals 523
//! instructions 1045310
//! k 10
//! point <interval-index> <weight> <cluster>
//! ...
//! ```

use crate::bbv::{bbvs, dist2};
use crate::file::Trace;
use crate::kmeans::kmeans;

/// Sidecar format version line.
pub const SIMPTS_VERSION: &str = "strata-simpoints-v1";

/// Seed for the clustering rng; fixed so selection is a pure function of
/// the trace.
const KMEANS_SEED: u64 = 0x51_3170_1275; // "simpoints"

/// Intervals per cluster the ROADMAP sizing targets: k ≈ n/25, clamped.
const INTERVALS_PER_CLUSTER: usize = 25;

/// Hard cap on cluster count.
pub const MAX_K: usize = 10;

/// One elected simulation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimPoint {
    /// Index of the elected interval in the trace's interval sequence.
    pub interval: u64,
    /// Number of intervals this point stands for (its estimator weight).
    pub weight: u64,
    /// The phase (cluster) the point represents.
    pub cluster: u32,
}

/// A full SimPoint selection for one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimPoints {
    /// Interval length in instructions.
    pub interval: u64,
    /// Total number of intervals in the trace (including the trailing
    /// partial one).
    pub intervals: u64,
    /// Total recorded instructions.
    pub instructions: u64,
    /// Number of phases (clusters).
    pub k: u32,
    /// Elected points, sorted by interval index.
    pub points: Vec<SimPoint>,
}

impl SimPoints {
    /// Fraction of the trace the elected intervals cover (the sampled
    /// guest-dispatch work relative to exact mode, before warmup).
    pub fn coverage(&self) -> f64 {
        if self.intervals == 0 {
            return 0.0;
        }
        self.points.len() as f64 / self.intervals as f64
    }

    /// Renders the text sidecar (trailing newline included).
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(SIMPTS_VERSION);
        s.push('\n');
        s.push_str(&format!("interval {}\n", self.interval));
        s.push_str(&format!("intervals {}\n", self.intervals));
        s.push_str(&format!("instructions {}\n", self.instructions));
        s.push_str(&format!("k {}\n", self.k));
        for p in &self.points {
            s.push_str(&format!(
                "point {} {} {}\n",
                p.interval, p.weight, p.cluster
            ));
        }
        s
    }

    /// Parses a sidecar produced by [`SimPoints::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn parse(text: &str) -> Result<SimPoints, String> {
        let mut lines = text.lines();
        if lines.next() != Some(SIMPTS_VERSION) {
            return Err(format!("missing {SIMPTS_VERSION} header"));
        }
        fn field(line: Option<&str>, key: &str) -> Result<u64, String> {
            let line = line.ok_or_else(|| format!("missing {key} line"))?;
            let rest = line
                .strip_prefix(key)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| format!("expected `{key} <n>`, got `{line}`"))?;
            rest.parse()
                .map_err(|_| format!("bad {key} value `{rest}`"))
        }
        let interval = field(lines.next(), "interval")?;
        let intervals = field(lines.next(), "intervals")?;
        let instructions = field(lines.next(), "instructions")?;
        let k = field(lines.next(), "k")? as u32;
        let mut points = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("point") {
                return Err(format!("expected `point ...`, got `{line}`"));
            }
            let mut num = |name: &str| -> Result<u64, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("point line missing {name}"))?
                    .parse()
                    .map_err(|_| format!("bad point {name} in `{line}`"))
            };
            let interval = num("interval")?;
            let weight = num("weight")?;
            let cluster = num("cluster")? as u32;
            points.push(SimPoint {
                interval,
                weight,
                cluster,
            });
        }
        let total: u64 = points.iter().map(|p| p.weight).sum();
        if total != intervals {
            return Err(format!(
                "point weights sum to {total}, expected {intervals}"
            ));
        }
        Ok(SimPoints {
            interval,
            intervals,
            instructions,
            k,
            points,
        })
    }
}

/// Elects simulation points for `trace` at its recorded interval length.
///
/// # Panics
///
/// Panics if the trace's interval length is zero.
pub fn select(trace: &Trace) -> SimPoints {
    let vecs = bbvs(&trace.records, trace.interval);
    let n = vecs.len();
    if n == 0 {
        return SimPoints {
            interval: trace.interval,
            intervals: 0,
            instructions: 0,
            k: 0,
            points: Vec::new(),
        };
    }
    let k = (n / INTERVALS_PER_CLUSTER).clamp(1, MAX_K).min(n);
    let clustering = kmeans(&vecs, k, KMEANS_SEED);

    let mut points = Vec::new();
    for cluster in 0..k {
        let members: Vec<usize> = (0..n)
            .filter(|&i| clustering.assignments[i] == cluster)
            .collect();
        if members.is_empty() {
            continue;
        }
        // Rank members by distance to the centroid; ties break on the
        // earlier interval for determinism.
        let mut ranked: Vec<(f64, usize)> = members
            .iter()
            .map(|&i| (dist2(&vecs[i], &clustering.centroids[cluster]), i))
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let size = members.len() as u64;
        if ranked.len() >= 2 {
            let runner_weight = size / 2;
            points.push(SimPoint {
                interval: ranked[0].1 as u64,
                weight: size - runner_weight,
                cluster: cluster as u32,
            });
            points.push(SimPoint {
                interval: ranked[1].1 as u64,
                weight: runner_weight,
                cluster: cluster as u32,
            });
        } else {
            points.push(SimPoint {
                interval: ranked[0].1 as u64,
                weight: size,
                cluster: cluster as u32,
            });
        }
    }
    points.sort_by_key(|p| p.interval);
    SimPoints {
        interval: trace.interval,
        intervals: n as u64,
        instructions: trace.records.len() as u64,
        k: k as u32,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::NativeSummary;
    use strata_isa::ControlKind;
    use strata_machine::observers::{CompactRetire, MemClass};

    fn phase_trace(phases: &[(u32, usize)], interval: u64) -> Trace {
        // Each phase loops on a single-block self-jump at its own pc.
        let mut records = Vec::new();
        for &(pc, len) in phases {
            for _ in 0..len {
                records.push(CompactRetire {
                    pc,
                    kind: ControlKind::Direct,
                    taken: true,
                    indirect: false,
                    target: pc,
                    mem: MemClass::None,
                });
            }
        }
        Trace {
            workload: "synthetic".into(),
            scale: 1,
            variant: 0,
            interval,
            checksum: 0,
            natives: Vec::<NativeSummary>::new(),
            records,
        }
    }

    #[test]
    fn weights_partition_the_intervals() {
        let t = phase_trace(&[(0x1000, 5000), (0x8000, 3000)], 100);
        let sp = select(&t);
        assert_eq!(sp.intervals, 80);
        let total: u64 = sp.points.iter().map(|p| p.weight).sum();
        assert_eq!(total, sp.intervals);
        assert!(sp.coverage() <= 0.5, "coverage {}", sp.coverage());
    }

    #[test]
    fn clusters_elect_two_samples_when_possible() {
        let t = phase_trace(&[(0x1000, 5000), (0x8000, 5000)], 100);
        let sp = select(&t);
        // Degenerate synthetic input can leave a k-means cluster empty
        // (identical points); every *electing* cluster contributes one
        // or two points, and multi-member clusters contribute two.
        let electing: std::collections::BTreeSet<u32> =
            sp.points.iter().map(|p| p.cluster).collect();
        assert!(!electing.is_empty());
        for &cluster in &electing {
            let n = sp.points.iter().filter(|p| p.cluster == cluster).count();
            assert!((1..=2).contains(&n), "cluster {cluster} elected {n} points");
        }
        assert!(
            sp.points
                .iter()
                .any(|p| sp.points.iter().filter(|q| q.cluster == p.cluster).count() == 2),
            "at least one phase has a runner-up sample"
        );
    }

    #[test]
    fn sidecar_round_trips() {
        let t = phase_trace(&[(0x1000, 2600), (0x8000, 2600)], 100);
        let sp = select(&t);
        let text = sp.render();
        let back = SimPoints::parse(&text).unwrap();
        assert_eq!(back, sp);
    }

    #[test]
    fn render_is_deterministic() {
        let t = phase_trace(&[(0x1000, 2600), (0x8000, 2600)], 100);
        assert_eq!(select(&t).render(), select(&t).render());
    }

    #[test]
    fn parse_rejects_weight_mismatch() {
        let text = format!(
            "{SIMPTS_VERSION}\ninterval 100\nintervals 10\ninstructions 1000\nk 1\npoint 0 9 0\n"
        );
        assert!(SimPoints::parse(&text).unwrap_err().contains("sum to 9"));
    }

    #[test]
    fn parse_rejects_bad_header() {
        assert!(SimPoints::parse("nope\n").is_err());
        assert!(SimPoints::parse("strata-simpoints-v1\ninterval x\n").is_err());
    }

    #[test]
    fn empty_trace_selects_nothing() {
        let t = phase_trace(&[], 100);
        let sp = select(&t);
        assert_eq!(sp.k, 0);
        assert!(sp.points.is_empty());
        assert_eq!(SimPoints::parse(&sp.render()).unwrap(), sp);
    }
}
