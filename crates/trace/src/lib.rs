//! Compressed retire traces and SimPoint sampled simulation.
//!
//! The experiment suite's cost is dominated by guest interpretation:
//! every workload × mechanism × profile cell re-executes the guest from
//! scratch. This crate converts that cost into "trace bytes streamed":
//!
//! 1. **Record** ([`record`]): one reference native run per workload
//!    captures every retired instruction as a
//!    [`CompactRetire`](strata_machine::observers::CompactRetire) — pc,
//!    control-flow outcome, target, mem-access class — while charging all
//!    four architecture cost models in the same pass, so the trace header
//!    carries the exact per-profile [`NativeRun`](strata_core::NativeRun)
//!    baselines for free.
//! 2. **Store** ([`file`]): the stream is delta/varint packed into
//!    length-prefixed, FNV-1a-checksummed blocks (~1.5 bytes per
//!    instruction) — the same framing discipline as the fleet wire
//!    protocol, so truncation and corruption are decode *errors*, never
//!    panics.
//! 3. **Phase analysis** ([`bbv`], [`kmeans`], [`simpoints`]): fixed-size
//!    intervals are summarized as hashed basic-block vectors, clustered
//!    with a seeded deterministic k-means, and each cluster elects
//!    weighted representative intervals (SimPoints).
//! 4. **Replay** (in `strata-expt`): dispatch mechanisms re-run over the
//!    recorded control-flow events of the sampled intervals only, and the
//!    per-cluster weights turn sampled counters into whole-run estimates
//!    with confidence intervals.

pub mod bbv;
pub mod codec;
pub mod file;
pub mod kmeans;
pub mod record;
pub mod simpoints;

pub use bbv::{bbvs, BBV_DIMS};
pub use codec::{decode_block, encode_block, CodecError};
pub use file::{NativeSummary, Trace, TraceError, TraceInfo};
pub use record::{record, Recorded};
pub use simpoints::{select, SimPoint, SimPoints};

/// FNV-1a 64-bit hash — block checksums and header checksums.
///
/// Same constants as `strata_expt::cell::fnv1a64`; duplicated here because
/// the dependency points the other way (`strata-expt` consumes traces).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_expt() {
        // Frozen vectors shared with strata_expt::cell::fnv1a64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
