//! The on-disk `.strace` container: header + checksummed record blocks.
//!
//! ```text
//! magic   8 bytes  "STRACE01"
//! header  u32 len ‖ u64 fnv1a64(payload) ‖ payload
//! blocks  repeated: u32 payload_len ‖ u32 record_count ‖
//!         u64 fnv1a64(payload) ‖ payload   (codec-packed records)
//! eof     u32 0xFFFF_FFFF
//! ```
//!
//! The header payload carries the workload identity (name, scale,
//! variant), the sampling interval the trace was cut for, the total
//! record count, the reference syscall checksum, and one full
//! [`NativeRun`] per architecture profile — captured in the same pass
//! that recorded the stream, so sampled mode serves native cells exactly
//! without re-running the guest.
//!
//! Everything is little-endian and byte-deterministic: recording the
//! same workload twice produces identical files. All read failures are
//! [`TraceError`] values.

use std::path::Path;

use strata_core::NativeRun;
use strata_isa::Reg;
use strata_machine::observers::CompactRetire;

use crate::codec::{decode_block, encode_block, CodecError};
use crate::fnv1a64;

/// File magic, first eight bytes of every `.strace`.
pub const MAGIC: &[u8; 8] = b"STRACE01";

/// Records per block. 64 Ki records keeps blocks around 100 KiB packed —
/// large enough to amortize framing, small enough to bound the damage of
/// a bad length field.
pub const BLOCK_RECORDS: usize = 1 << 16;

/// Upper bound on any length field; a corrupt length cannot OOM the
/// reader.
pub const MAX_BLOCK: u32 = 16 * 1024 * 1024;

/// End-of-blocks sentinel in the `payload_len` position.
const EOF_MARK: u32 = 0xFFFF_FFFF;

/// Why a trace failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Underlying filesystem error.
    Io(String),
    /// First eight bytes were not [`MAGIC`].
    BadMagic,
    /// File ended before the structure did.
    Truncated,
    /// A length field exceeded [`MAX_BLOCK`].
    Oversized(u32),
    /// A block or header checksum disagreed with its payload.
    BadChecksum,
    /// Header structure invalid (bad UTF-8, short fields, bad counts).
    Malformed(String),
    /// A record block failed to unpack.
    Codec(CodecError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a strata trace (bad magic)"),
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::Oversized(n) => write!(f, "block length {n} exceeds cap"),
            TraceError::BadChecksum => write!(f, "checksum mismatch (corrupt trace)"),
            TraceError::Malformed(m) => write!(f, "malformed trace: {m}"),
            TraceError::Codec(e) => write!(f, "record block: {e}"),
        }
    }
}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> TraceError {
        TraceError::Codec(e)
    }
}

/// Per-profile native baseline captured at record time.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeSummary {
    /// Profile name (`ArchProfile::name`).
    pub profile: String,
    /// The full native measurement under that profile.
    pub run: NativeRun,
}

/// A loaded (or about-to-be-written) trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Workload name.
    pub workload: String,
    /// Workload scale the trace was recorded at.
    pub scale: u32,
    /// Workload variant.
    pub variant: u64,
    /// Sampling interval (instructions) the trace was cut for.
    pub interval: u64,
    /// Reference syscall checksum of the recorded run.
    pub checksum: u32,
    /// One native baseline per architecture profile.
    pub natives: Vec<NativeSummary>,
    /// The full retire stream.
    pub records: Vec<CompactRetire>,
}

/// Header-only view for `strata trace info` — everything except the
/// record stream, plus size accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInfo {
    /// Workload name.
    pub workload: String,
    /// Workload scale.
    pub scale: u32,
    /// Workload variant.
    pub variant: u64,
    /// Sampling interval (instructions).
    pub interval: u64,
    /// Total recorded instructions.
    pub instructions: u64,
    /// Reference syscall checksum.
    pub checksum: u32,
    /// Profile names with baselines in the header.
    pub profiles: Vec<String>,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Number of record blocks.
    pub blocks: u64,
}

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    push_u16(out, bytes.len() as u16);
    out.extend_from_slice(bytes);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).ok_or(TraceError::Truncated)?;
        if end > self.buf.len() {
            return Err(TraceError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, TraceError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| TraceError::Malformed("non-UTF-8 string".into()))
    }
}

fn encode_native(out: &mut Vec<u8>, s: &NativeSummary) {
    push_str(out, &s.profile);
    push_u32(out, s.run.checksum);
    for v in [
        s.run.total_cycles,
        s.run.instructions,
        s.run.indirect_jumps,
        s.run.indirect_calls,
        s.run.returns,
        s.run.direct_calls,
        s.run.cond_branches,
        s.run.icache_misses,
        s.run.dcache_misses,
    ] {
        push_u64(out, v);
    }
    push_u16(out, s.run.regs.len() as u16);
    for r in s.run.regs {
        push_u32(out, r);
    }
}

fn decode_native(r: &mut Reader) -> Result<NativeSummary, TraceError> {
    let profile = r.string()?;
    let checksum = r.u32()?;
    let mut fields = [0u64; 9];
    for f in fields.iter_mut() {
        *f = r.u64()?;
    }
    let nregs = r.u16()? as usize;
    if nregs != Reg::COUNT {
        return Err(TraceError::Malformed(format!(
            "native summary has {nregs} registers, expected {}",
            Reg::COUNT
        )));
    }
    let mut regs = [0u32; Reg::COUNT];
    for reg in regs.iter_mut() {
        *reg = r.u32()?;
    }
    Ok(NativeSummary {
        profile,
        run: NativeRun {
            checksum,
            total_cycles: fields[0],
            instructions: fields[1],
            indirect_jumps: fields[2],
            indirect_calls: fields[3],
            returns: fields[4],
            direct_calls: fields[5],
            cond_branches: fields[6],
            icache_misses: fields[7],
            dcache_misses: fields[8],
            regs,
        },
    })
}

impl Trace {
    /// The native baseline for `profile`, if the header carries one.
    pub fn native_for(&self, profile: &str) -> Option<&NativeRun> {
        self.natives
            .iter()
            .find(|n| n.profile == profile)
            .map(|n| &n.run)
    }

    fn header_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_str(&mut out, &self.workload);
        push_u32(&mut out, self.scale);
        push_u64(&mut out, self.variant);
        push_u64(&mut out, self.interval);
        push_u64(&mut out, self.records.len() as u64);
        push_u32(&mut out, self.checksum);
        push_u16(&mut out, self.natives.len() as u16);
        for n in &self.natives {
            encode_native(&mut out, n);
        }
        out
    }

    /// Serializes the trace to bytes (the exact `.strace` file image).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.records.len() * 2 + 256);
        out.extend_from_slice(MAGIC);
        let header = self.header_payload();
        push_u32(&mut out, header.len() as u32);
        push_u64(&mut out, fnv1a64(&header));
        out.extend_from_slice(&header);
        for chunk in self.records.chunks(BLOCK_RECORDS) {
            let payload = encode_block(chunk);
            push_u32(&mut out, payload.len() as u32);
            push_u32(&mut out, chunk.len() as u32);
            push_u64(&mut out, fnv1a64(&payload));
            out.extend_from_slice(&payload);
        }
        push_u32(&mut out, EOF_MARK);
        out
    }

    /// Parses a `.strace` image.
    ///
    /// # Errors
    ///
    /// Any structural defect yields a [`TraceError`]; this function never
    /// panics on arbitrary input.
    pub fn from_bytes(buf: &[u8]) -> Result<Trace, TraceError> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(8)? != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let header_len = r.u32()?;
        if header_len > MAX_BLOCK {
            return Err(TraceError::Oversized(header_len));
        }
        let header_sum = r.u64()?;
        let header = r.take(header_len as usize)?;
        if fnv1a64(header) != header_sum {
            return Err(TraceError::BadChecksum);
        }
        let mut h = Reader {
            buf: header,
            pos: 0,
        };
        let workload = h.string()?;
        let scale = h.u32()?;
        let variant = h.u64()?;
        let interval = h.u64()?;
        let instructions = h.u64()?;
        let checksum = h.u32()?;
        let native_count = h.u16()?;
        let mut natives = Vec::with_capacity(native_count as usize);
        for _ in 0..native_count {
            natives.push(decode_native(&mut h)?);
        }
        if h.pos != header.len() {
            return Err(TraceError::Malformed("trailing header bytes".into()));
        }

        let mut records = Vec::new();
        loop {
            let payload_len = r.u32()?;
            if payload_len == EOF_MARK {
                break;
            }
            if payload_len > MAX_BLOCK {
                return Err(TraceError::Oversized(payload_len));
            }
            let count = r.u32()?;
            if count as usize > BLOCK_RECORDS {
                return Err(TraceError::Oversized(count));
            }
            let sum = r.u64()?;
            let payload = r.take(payload_len as usize)?;
            if fnv1a64(payload) != sum {
                return Err(TraceError::BadChecksum);
            }
            records.extend(decode_block(payload, count)?);
        }
        if r.pos != buf.len() {
            return Err(TraceError::Malformed(
                "trailing bytes after eof mark".into(),
            ));
        }
        if records.len() as u64 != instructions {
            return Err(TraceError::Malformed(format!(
                "header promises {instructions} records, blocks hold {}",
                records.len()
            )));
        }
        Ok(Trace {
            workload,
            scale,
            variant,
            interval,
            checksum,
            natives,
            records,
        })
    }

    /// Reads a trace from disk.
    ///
    /// # Errors
    ///
    /// Filesystem failures surface as [`TraceError::Io`]; structural
    /// defects as the other variants.
    pub fn read(path: &Path) -> Result<Trace, TraceError> {
        let buf = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        Trace::from_bytes(&buf)
    }

    /// Header-only summary of a trace file on disk.
    ///
    /// # Errors
    ///
    /// Same contract as [`Trace::read`] (the record blocks are still
    /// checksum-verified and counted).
    pub fn info(path: &Path) -> Result<TraceInfo, TraceError> {
        let buf = std::fs::read(path).map_err(|e| TraceError::Io(e.to_string()))?;
        let trace = Trace::from_bytes(&buf)?;
        let blocks = (trace.records.len() as u64).div_ceil(BLOCK_RECORDS as u64);
        Ok(TraceInfo {
            workload: trace.workload,
            scale: trace.scale,
            variant: trace.variant,
            interval: trace.interval,
            instructions: trace.records.len() as u64,
            checksum: trace.checksum,
            profiles: trace.natives.iter().map(|n| n.profile.clone()).collect(),
            file_bytes: buf.len() as u64,
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_isa::ControlKind;
    use strata_machine::observers::MemClass;
    use strata_stats::rng::SmallRng;

    fn sample_trace(n: usize) -> Trace {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut records = Vec::with_capacity(n);
        let mut pc = 0x1000u32;
        for _ in 0..n {
            let branch = rng.gen_bool(0.2);
            let (kind, taken, target) = if branch {
                let t = rng.gen_range(0x1000u32..0x9000) & !3;
                (ControlKind::Direct, true, t)
            } else {
                (ControlKind::None, false, pc.wrapping_add(4))
            };
            records.push(CompactRetire {
                pc,
                kind,
                taken,
                indirect: false,
                target,
                mem: MemClass::None,
            });
            pc = target;
        }
        Trace {
            workload: "gzip".into(),
            scale: 1,
            variant: 0,
            interval: 2000,
            checksum: 0xdead_beef,
            natives: vec![NativeSummary {
                profile: "x86-like".into(),
                run: NativeRun {
                    checksum: 0xdead_beef,
                    total_cycles: 123_456,
                    instructions: n as u64,
                    indirect_jumps: 7,
                    indirect_calls: 3,
                    returns: 11,
                    direct_calls: 11,
                    cond_branches: 99,
                    icache_misses: 5,
                    dcache_misses: 6,
                    regs: [1; Reg::COUNT],
                },
            }],
            records,
        }
    }

    #[test]
    fn round_trips_including_multi_block() {
        for n in [0usize, 5, BLOCK_RECORDS, BLOCK_RECORDS + 13] {
            let t = sample_trace(n);
            let bytes = t.to_bytes();
            let back = Trace::from_bytes(&bytes).unwrap();
            assert_eq!(back, t, "n = {n}");
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let t = sample_trace(10_000);
        assert_eq!(t.to_bytes(), t.to_bytes());
    }

    #[test]
    fn native_lookup_by_profile() {
        let t = sample_trace(10);
        assert!(t.native_for("x86-like").is_some());
        assert!(t.native_for("sparc-like").is_none());
    }

    #[test]
    fn every_prefix_truncation_is_an_error() {
        let bytes = sample_trace(300).to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Trace::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes parsed cleanly"
            );
        }
    }

    #[test]
    fn every_byte_corruption_is_an_error() {
        // Unlike the raw codec, the framed file detects *every* flip:
        // header and blocks are checksummed, lengths are bounded, and
        // the eof mark is position-checked.
        let bytes = sample_trace(200).to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                Trace::from_bytes(&bad).is_err(),
                "flipping byte {i} went undetected"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_trace(10).to_bytes();
        bytes.push(0);
        assert_eq!(
            Trace::from_bytes(&bytes),
            Err(TraceError::Malformed(
                "trailing bytes after eof mark".into()
            ))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_trace(10).to_bytes();
        bytes[0] ^= 0xff;
        assert_eq!(Trace::from_bytes(&bytes), Err(TraceError::BadMagic));
    }
}
