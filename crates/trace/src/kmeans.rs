//! Deterministic seeded k-means over basic-block vectors.
//!
//! k-means++ initialization drives both the first centroid pick and the
//! subsequent distance-weighted picks from a [`SmallRng`] (SplitMix64)
//! stream, so clustering is a pure function of `(points, k, seed)` —
//! part of the repo's determinism contract, like workload generation.
//! Lloyd iterations run to assignment fixpoint (bounded), and an emptied
//! cluster is reseeded to the point farthest from its centroid, so every
//! returned cluster is non-empty whenever `k <= points.len()`.

use strata_stats::rng::SmallRng;

use crate::bbv::{dist2, BBV_DIMS};

/// Maximum Lloyd iterations; real BBV sets converge in well under this.
const MAX_ITERS: usize = 100;

/// The result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Final centroids, `k` of them.
    pub centroids: Vec<[f64; BBV_DIMS]>,
}

/// Clusters `points` into `k` groups, deterministically for a given
/// `seed`.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the number of points.
pub fn kmeans(points: &[[f64; BBV_DIMS]], k: usize, seed: u64) -> Clustering {
    assert!(k > 0, "k must be nonzero");
    assert!(k <= points.len(), "k = {k} exceeds {} points", points.len());
    let mut rng = SmallRng::seed_from_u64(seed);

    // k-means++ seeding: first centroid uniform, the rest proportional
    // to squared distance from the nearest chosen centroid.
    let mut centroids: Vec<[f64; BBV_DIMS]> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0usize..points.len())]);
    let mut d2: Vec<f64> = points.iter().map(|p| dist2(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; any pick
            // works — take the lowest index not yet chosen for
            // determinism.
            (0..points.len())
                .find(|&i| d2[i] > 0.0 || !centroids.contains(&points[i]))
                .unwrap_or(0)
        } else {
            // Inverse-CDF sample over the d² weights using 53 random
            // mantissa bits.
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            let mut acc = 0.0;
            let mut pick = None;
            for (i, &w) in d2.iter().enumerate() {
                if w <= 0.0 {
                    continue; // already a centroid (or a duplicate of one)
                }
                pick = Some(i);
                acc += w;
                if acc >= unit * total {
                    break;
                }
            }
            pick.expect("total > 0 implies a positive-weight point")
        };
        centroids.push(points[next]);
        for (i, p) in points.iter().enumerate() {
            let d = dist2(p, &centroids[centroids.len() - 1]);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }

    let mut assignments = vec![0usize; points.len()];
    for _ in 0..MAX_ITERS {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist2(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        // Update.
        let mut sums = vec![[0f64; BBV_DIMS]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed an emptied cluster to the globally worst-fit
                // point so no cluster vanishes.
                let (far, _) = points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, dist2(p, &centroids[assignments[i]])))
                    .fold((0, -1.0), |acc, x| if x.1 > acc.1 { x } else { acc });
                centroids[c] = points[far];
            } else {
                for (s, centroid) in sums[c].iter().zip(centroids[c].iter_mut()) {
                    *centroid = s / counts[c] as f64;
                }
            }
        }
    }
    Clustering {
        assignments,
        centroids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(dim: usize, weight: f64) -> [f64; BBV_DIMS] {
        let mut p = [0f64; BBV_DIMS];
        p[dim] = weight;
        p
    }

    #[test]
    fn separates_obvious_clusters() {
        // Two tight groups in orthogonal dimensions.
        let mut points = Vec::new();
        for i in 0..10 {
            points.push(point(3, 1.0 + i as f64 * 1e-6));
        }
        for i in 0..10 {
            points.push(point(40, 1.0 + i as f64 * 1e-6));
        }
        let c = kmeans(&points, 2, 7);
        let first = c.assignments[0];
        assert!(c.assignments[..10].iter().all(|&a| a == first));
        assert!(c.assignments[10..].iter().all(|&a| a != first));
    }

    #[test]
    fn deterministic_for_a_seed() {
        let points: Vec<_> = (0..30)
            .map(|i| point(i % BBV_DIMS, 1.0 + (i as f64) * 0.1))
            .collect();
        let a = kmeans(&points, 4, 99);
        let b = kmeans(&points, 4, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn every_cluster_nonempty() {
        let points: Vec<_> = (0..20).map(|i| point(i % 5, 1.0)).collect();
        let c = kmeans(&points, 5, 3);
        for cluster in 0..5 {
            assert!(
                c.assignments.contains(&cluster),
                "cluster {cluster} is empty"
            );
        }
    }

    #[test]
    fn k_equals_n_is_identity_partition() {
        let points: Vec<_> = (0..6).map(|i| point(i, 1.0)).collect();
        let c = kmeans(&points, 6, 1);
        let mut seen = c.assignments.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6, "each point its own cluster");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_k_rejected() {
        kmeans(&[point(0, 1.0)], 0, 0);
    }
}
