//! The trace record codec: delta/varint packing of retire records.
//!
//! A block payload is a sequence of variable-width records:
//!
//! ```text
//! flags  u8   bits 0..2  control kind (0 none, 1 cond, 2 direct,
//!                        3 call, 4 indirect, 5 return)
//!             bit  3     taken
//!             bit  4     indirect target
//!             bits 5..6  mem class (0 none, 1 load, 2 store)
//!             bit  7     sequential (pc == prev_pc + 4; no pc delta)
//! [pc Δ]  varint  zigzag(pc - (prev_pc + 4)), absent when bit 7 set
//! [tgt Δ] varint  zigzag(target - (pc + 4)), present when the record is
//!                 a control instruction or taken; absent otherwise
//!                 (target is then the fall-through pc + 4)
//! ```
//!
//! Straight-line code costs one byte per instruction; a taken branch
//! costs two to three. Every decode failure is a [`CodecError`] value —
//! the property tests truncate at every prefix and flip every byte to
//! pin that down.

use strata_isa::ControlKind;
use strata_machine::observers::{CompactRetire, MemClass};

/// Why a block payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Payload ended mid-record.
    Truncated,
    /// Flag byte names an unknown control kind or mem class.
    BadFlags(u8),
    /// A varint ran past the 64-bit range.
    BadVarint,
    /// Payload decoded cleanly but held the wrong number of records, or
    /// left trailing bytes.
    CountMismatch {
        /// Records the block header promised.
        expected: u32,
        /// Records actually present.
        found: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated mid-record"),
            CodecError::BadFlags(b) => write!(f, "invalid flag byte {b:#04x}"),
            CodecError::BadVarint => write!(f, "varint exceeds 64 bits"),
            CodecError::CountMismatch { expected, found } => {
                write!(f, "block promised {expected} records, decoded {found}")
            }
        }
    }
}

const KIND_MASK: u8 = 0b0000_0111;
const FLAG_TAKEN: u8 = 1 << 3;
const FLAG_INDIRECT: u8 = 1 << 4;
const MEM_SHIFT: u8 = 5;
const MEM_MASK: u8 = 0b0110_0000;
const FLAG_SEQ: u8 = 1 << 7;

fn kind_code(kind: ControlKind) -> u8 {
    match kind {
        ControlKind::None => 0,
        ControlKind::Conditional => 1,
        ControlKind::Direct => 2,
        ControlKind::Call => 3,
        ControlKind::Indirect => 4,
        ControlKind::Return => 5,
    }
}

fn kind_of(code: u8) -> Option<ControlKind> {
    Some(match code {
        0 => ControlKind::None,
        1 => ControlKind::Conditional,
        2 => ControlKind::Direct,
        3 => ControlKind::Call,
        4 => ControlKind::Indirect,
        5 => ControlKind::Return,
        _ => return None,
    })
}

fn mem_code(mem: MemClass) -> u8 {
    match mem {
        MemClass::None => 0,
        MemClass::Load => 1,
        MemClass::Store => 2,
    }
}

fn mem_of(code: u8) -> Option<MemClass> {
    Some(match code {
        0 => MemClass::None,
        1 => MemClass::Load,
        2 => MemClass::Store,
        _ => return None,
    })
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(payload: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = payload.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::BadVarint);
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Whether a record carries an explicit target delta. Untaken non-control
/// instructions always fall through (`target == pc + 4`), so only control
/// instructions and taken transfers need one.
fn has_target(kind: ControlKind, taken: bool) -> bool {
    kind != ControlKind::None || taken
}

/// Packs a record slice into one block payload.
pub fn encode_block(records: &[CompactRetire]) -> Vec<u8> {
    // ~1.5 bytes per record in practice; reserve 2 to avoid regrowth.
    let mut out = Vec::with_capacity(records.len() * 2);
    let mut prev_pc: u32 = 0;
    for r in records {
        let seq = r.pc == prev_pc.wrapping_add(4);
        let mut flags = kind_code(r.kind) | (mem_code(r.mem) << MEM_SHIFT);
        if r.taken {
            flags |= FLAG_TAKEN;
        }
        if r.indirect {
            flags |= FLAG_INDIRECT;
        }
        if seq {
            flags |= FLAG_SEQ;
        }
        out.push(flags);
        if !seq {
            let delta = r.pc as i64 - (prev_pc as i64 + 4);
            push_varint(&mut out, zigzag(delta));
        }
        if has_target(r.kind, r.taken) {
            let delta = r.target as i64 - (r.pc as i64 + 4);
            push_varint(&mut out, zigzag(delta));
        } else {
            debug_assert_eq!(
                r.target,
                r.pc.wrapping_add(4),
                "untaken non-control record at {:#x} must fall through",
                r.pc
            );
        }
        prev_pc = r.pc;
    }
    out
}

/// Unpacks a block payload, expecting exactly `count` records.
///
/// # Errors
///
/// Any structural defect — truncation, unknown flag bits, varint
/// overflow, record-count disagreement — is returned as a [`CodecError`].
pub fn decode_block(payload: &[u8], count: u32) -> Result<Vec<CompactRetire>, CodecError> {
    let mut records = Vec::with_capacity(count as usize);
    let mut prev_pc: u32 = 0;
    let mut pos = 0usize;
    while pos < payload.len() {
        if records.len() as u32 >= count {
            return Err(CodecError::CountMismatch {
                expected: count,
                found: count + 1,
            });
        }
        let flags = payload[pos];
        pos += 1;
        let kind = kind_of(flags & KIND_MASK).ok_or(CodecError::BadFlags(flags))?;
        let mem = mem_of((flags & MEM_MASK) >> MEM_SHIFT).ok_or(CodecError::BadFlags(flags))?;
        let taken = flags & FLAG_TAKEN != 0;
        let indirect = flags & FLAG_INDIRECT != 0;
        let pc = if flags & FLAG_SEQ != 0 {
            prev_pc.wrapping_add(4)
        } else {
            let delta = unzigzag(read_varint(payload, &mut pos)?);
            (prev_pc as i64 + 4 + delta) as u32
        };
        let target = if has_target(kind, taken) {
            let delta = unzigzag(read_varint(payload, &mut pos)?);
            (pc as i64 + 4 + delta) as u32
        } else {
            pc.wrapping_add(4)
        };
        records.push(CompactRetire {
            pc,
            kind,
            taken,
            indirect,
            target,
            mem,
        });
        prev_pc = pc;
    }
    if records.len() as u32 != count {
        return Err(CodecError::CountMismatch {
            expected: count,
            found: records.len() as u32,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_stats::rng::SmallRng;

    fn random_record(rng: &mut SmallRng) -> CompactRetire {
        let kind = kind_of(rng.gen_range(0u8..6)).unwrap();
        let taken = kind != ControlKind::None && rng.gen_bool(0.6);
        let pc = rng.gen_range(0u32..0x0100_0000) & !3;
        let target = if has_target(kind, taken) {
            rng.gen_range(0u32..0x0100_0000) & !3
        } else {
            pc.wrapping_add(4)
        };
        CompactRetire {
            pc,
            kind,
            taken,
            indirect: kind != ControlKind::None && rng.gen_bool(0.3),
            target,
            mem: mem_of(rng.gen_range(0u8..3)).unwrap(),
        }
    }

    fn random_stream(rng: &mut SmallRng, len: usize) -> Vec<CompactRetire> {
        // Mix straight-line runs (the common case the seq bit compresses)
        // with fully random records.
        let mut records = Vec::with_capacity(len);
        let mut pc = 0x1000u32;
        while records.len() < len {
            if rng.gen_bool(0.7) {
                for _ in 0..rng.gen_range(1usize..8) {
                    if records.len() == len {
                        break;
                    }
                    records.push(CompactRetire {
                        pc,
                        kind: ControlKind::None,
                        taken: false,
                        indirect: false,
                        target: pc.wrapping_add(4),
                        mem: mem_of(rng.gen_range(0u8..3)).unwrap(),
                    });
                    pc = pc.wrapping_add(4);
                }
            } else {
                let r = random_record(rng);
                pc = r.target;
                records.push(r);
            }
        }
        records
    }

    #[test]
    fn round_trips_randomized_streams() {
        let mut rng = SmallRng::seed_from_u64(0x7ace);
        for case in 0..50 {
            let records = random_stream(&mut rng, 1 + case * 7);
            let payload = encode_block(&records);
            let back = decode_block(&payload, records.len() as u32).unwrap();
            assert_eq!(back, records, "case {case}");
        }
    }

    #[test]
    fn straight_line_code_is_one_byte_per_instr() {
        let records: Vec<CompactRetire> = (0..100)
            .map(|i| CompactRetire {
                pc: 0x1000 + i * 4,
                kind: ControlKind::None,
                taken: false,
                indirect: false,
                target: 0x1004 + i * 4,
                mem: MemClass::None,
            })
            .collect();
        let payload = encode_block(&records);
        // First record pays a pc delta; the rest ride the seq bit.
        assert!(payload.len() <= 103, "got {} bytes", payload.len());
        assert_eq!(decode_block(&payload, 100).unwrap(), records);
    }

    #[test]
    fn empty_block_round_trips() {
        assert!(encode_block(&[]).is_empty());
        assert_eq!(decode_block(&[], 0).unwrap(), vec![]);
    }

    #[test]
    fn every_prefix_truncation_is_an_error() {
        let mut rng = SmallRng::seed_from_u64(0xbead);
        let records = random_stream(&mut rng, 64);
        let payload = encode_block(&records);
        for cut in 0..payload.len() {
            let res = decode_block(&payload[..cut], records.len() as u32);
            assert!(res.is_err(), "prefix of {cut} bytes decoded cleanly");
        }
    }

    #[test]
    fn every_byte_corruption_is_detected_or_changes_records() {
        // Single-byte corruption must never decode to the original
        // stream while claiming success: either the decoder errors, or
        // it produces a *different* record list (the block checksum in
        // the file layer catches that case).
        let mut rng = SmallRng::seed_from_u64(0xc0de);
        let records = random_stream(&mut rng, 48);
        let payload = encode_block(&records);
        for i in 0..payload.len() {
            for flip in [0x01u8, 0x80u8, 0xff] {
                let mut bad = payload.clone();
                bad[i] ^= flip;
                match decode_block(&bad, records.len() as u32) {
                    Err(_) => {}
                    Ok(decoded) => assert_ne!(
                        decoded, records,
                        "flipping byte {i} with {flip:#x} was invisible"
                    ),
                }
            }
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // A non-seq record whose pc delta never terminates within 64 bits.
        let payload = [
            0x00u8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
        ];
        assert_eq!(decode_block(&payload, 1), Err(CodecError::BadVarint));
    }

    #[test]
    fn count_mismatch_rejected() {
        let records = vec![CompactRetire {
            pc: 0x1000,
            kind: ControlKind::None,
            taken: false,
            indirect: false,
            target: 0x1004,
            mem: MemClass::None,
        }];
        let payload = encode_block(&records);
        assert!(matches!(
            decode_block(&payload, 2),
            Err(CodecError::CountMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            decode_block(&payload, 0),
            Err(CodecError::CountMismatch { .. })
        ));
    }
}
