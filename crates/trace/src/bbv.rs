//! Basic-block-vector extraction over fixed-size intervals.
//!
//! Following the SimPoint methodology, the retire stream is cut into
//! fixed-length instruction intervals; each interval is summarized as a
//! vector counting, per basic block, the instructions spent in that
//! block. Block identity is the block-head pc hashed into a fixed number
//! of dimensions ([`BBV_DIMS`]) — random projection down to a tractable
//! width, standard for phase classification. Vectors are L1-normalized
//! so intervals compare by *distribution* of execution, not raw length
//! (the final partial interval would otherwise look artificially small).

use strata_machine::observers::CompactRetire;

/// Dimensionality of the hashed basic-block vectors.
pub const BBV_DIMS: usize = 64;

/// Hashes a block-head pc into a vector dimension.
///
/// Word-aligned pcs differ only above bit 1, so the low bits are shifted
/// out before a multiplicative (Fibonacci) hash spreads the head across
/// dimensions.
fn dim_of(head: u32) -> usize {
    ((head >> 2).wrapping_mul(0x9E37_79B1) >> 26) as usize
}

/// Cuts `records` into `interval`-instruction windows and returns one
/// L1-normalized BBV per window (the trailing partial window included).
///
/// A basic block ends at every control-flow instruction — taken or not —
/// and the successor block's head is the recorded next pc, so the
/// attribution needs no static CFG: it replays the dynamic block
/// structure straight off the trace.
///
/// # Panics
///
/// Panics if `interval` is zero.
pub fn bbvs(records: &[CompactRetire], interval: u64) -> Vec<[f64; BBV_DIMS]> {
    assert!(interval > 0, "interval must be nonzero");
    let mut out = Vec::new();
    if records.is_empty() {
        return out;
    }
    let mut vec = [0f64; BBV_DIMS];
    let mut in_interval = 0u64;
    let mut head = records[0].pc;
    for r in records {
        vec[dim_of(head)] += 1.0;
        in_interval += 1;
        if r.kind != strata_isa::ControlKind::None {
            head = r.target;
        }
        if in_interval == interval {
            normalize(&mut vec);
            out.push(vec);
            vec = [0f64; BBV_DIMS];
            in_interval = 0;
        }
    }
    if in_interval > 0 {
        normalize(&mut vec);
        out.push(vec);
    }
    out
}

fn normalize(vec: &mut [f64; BBV_DIMS]) {
    let sum: f64 = vec.iter().sum();
    if sum > 0.0 {
        for v in vec.iter_mut() {
            *v /= sum;
        }
    }
}

/// Squared Euclidean distance between two BBVs.
pub fn dist2(a: &[f64; BBV_DIMS], b: &[f64; BBV_DIMS]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_isa::ControlKind;
    use strata_machine::observers::MemClass;

    fn straight(pc: u32) -> CompactRetire {
        CompactRetire {
            pc,
            kind: ControlKind::None,
            taken: false,
            indirect: false,
            target: pc + 4,
            mem: MemClass::None,
        }
    }

    fn jump(pc: u32, target: u32) -> CompactRetire {
        CompactRetire {
            pc,
            kind: ControlKind::Direct,
            taken: true,
            indirect: false,
            target,
            mem: MemClass::None,
        }
    }

    #[test]
    fn interval_cutting_and_normalization() {
        let mut records = Vec::new();
        for i in 0..25u32 {
            records.push(straight(0x1000 + i * 4));
        }
        let vecs = bbvs(&records, 10);
        assert_eq!(vecs.len(), 3, "two full windows + one partial");
        for v in &vecs {
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "L1-normalized, got {sum}");
        }
    }

    #[test]
    fn distinct_phases_yield_distant_vectors() {
        // Phase A loops at 0x1000, phase B loops at 0x8000: their BBVs
        // must land in different dimensions (distance far from zero),
        // while two windows of the same phase are identical.
        let mut records = Vec::new();
        for _ in 0..50 {
            records.push(jump(0x1000, 0x1000));
        }
        for _ in 0..50 {
            records.push(jump(0x8000, 0x8000));
        }
        let vecs = bbvs(&records, 25);
        assert_eq!(vecs.len(), 4);
        assert!(dist2(&vecs[0], &vecs[1]) < 1e-12, "same phase, same vector");
        // vecs[2] is the transition window (one instruction still
        // attributed to the old head), vecs[3] is pure phase B.
        assert!(dist2(&vecs[0], &vecs[3]) > 0.1, "phases must separate");
        assert!(dist2(&vecs[2], &vecs[3]) < dist2(&vecs[0], &vecs[2]));
    }

    #[test]
    fn empty_stream_yields_no_vectors() {
        assert!(bbvs(&[], 100).is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_interval_rejected() {
        bbvs(&[straight(0)], 0);
    }
}
