//! Reference-run recording: one native pass, four cost models, one
//! retire stream.
//!
//! This mirrors [`strata_core::run_native_tiered`]'s loop exactly — same
//! machine construction, same syscall handling, same fuel accounting —
//! but chains an [`ArchModel`] per profile plus a [`RetireLog`] onto the
//! single execution, so the resulting [`Trace`] header carries native
//! baselines for *every* profile while the guest runs once.

use strata_arch::{ArchModel, ArchProfile};
use strata_core::{NativeRun, SdtError};
use strata_isa::ControlKind;
use strata_machine::observers::RetireLog;
use strata_machine::syscall::{SyscallState, SDT_TRAP_BASE};
use strata_machine::{
    layout, ExecTier, ExecutionObserver, Machine, Program, RetireEvent, StepOutcome,
};

use crate::file::{NativeSummary, Trace};

/// The raw outcome of a recording pass, before packaging into a
/// [`Trace`].
#[derive(Debug)]
pub struct Recorded {
    /// Syscall checksum of the run.
    pub checksum: u32,
    /// Per-profile native baselines, in [`profiles`](recording_profiles)
    /// order.
    pub natives: Vec<NativeSummary>,
    /// The full retire stream.
    pub log: RetireLog,
}

/// The profiles every trace records baselines for: the three real cost
/// models plus the ideal control.
pub fn recording_profiles() -> Vec<ArchProfile> {
    let mut v = ArchProfile::all();
    v.push(ArchProfile::ideal());
    v
}

struct MultiObserver {
    models: Vec<ArchModel>,
    log: RetireLog,
    indirect_jumps: u64,
    indirect_calls: u64,
    returns: u64,
    direct_calls: u64,
    cond_branches: u64,
}

impl ExecutionObserver for MultiObserver {
    #[inline]
    fn on_retire(&mut self, ev: &RetireEvent) {
        for m in &mut self.models {
            m.cost_of(ev);
        }
        self.log.on_retire(ev);
        match ev.control.kind {
            ControlKind::Indirect => self.indirect_jumps += 1,
            ControlKind::Call if ev.control.indirect => self.indirect_calls += 1,
            ControlKind::Call => self.direct_calls += 1,
            ControlKind::Return => self.returns += 1,
            ControlKind::Conditional => self.cond_branches += 1,
            _ => {}
        }
    }
}

/// Runs `program` natively once, recording the retire stream and a
/// [`NativeRun`] under every recording profile.
///
/// # Errors
///
/// Same contract as [`strata_core::run_native_tiered`]: reserved traps
/// and machine faults (including fuel exhaustion) are [`SdtError`]s.
pub fn record(program: &Program, fuel: u64, tier: ExecTier) -> Result<Recorded, SdtError> {
    let profiles = recording_profiles();
    let mut machine = Machine::new(layout::DEFAULT_MEM_BYTES);
    program.load(&mut machine)?;
    machine.set_tier(tier);
    let mut syscalls = SyscallState::new();
    let mut obs = MultiObserver {
        models: profiles.iter().cloned().map(ArchModel::new).collect(),
        log: RetireLog::new(),
        indirect_jumps: 0,
        indirect_calls: 0,
        returns: 0,
        direct_calls: 0,
        cond_branches: 0,
    };

    let mut used = 0u64;
    loop {
        let before = obs.models[0].stats().instructions;
        match machine.run(&mut obs, fuel.saturating_sub(used))? {
            StepOutcome::Halted => break,
            StepOutcome::Trap(code) => {
                if code >= SDT_TRAP_BASE {
                    return Err(SdtError::ReservedTrap {
                        code,
                        pc: machine.cpu().pc.wrapping_sub(4),
                    });
                }
                syscalls.handle(code, &machine);
            }
            StepOutcome::Running => unreachable!("run returns only on halt/trap/error"),
        }
        used += obs.models[0].stats().instructions - before;
    }

    let checksum = syscalls.checksum();
    let regs = *machine.cpu().regs();
    let natives = profiles
        .iter()
        .zip(&obs.models)
        .map(|(profile, model)| NativeSummary {
            profile: profile.name.to_string(),
            run: NativeRun {
                checksum,
                total_cycles: model.total_cycles(),
                instructions: model.stats().instructions,
                indirect_jumps: obs.indirect_jumps,
                indirect_calls: obs.indirect_calls,
                returns: obs.returns,
                direct_calls: obs.direct_calls,
                cond_branches: obs.cond_branches,
                icache_misses: model.icache().misses(),
                dcache_misses: model.dcache().misses(),
                regs,
            },
        })
        .collect();

    Ok(Recorded {
        checksum,
        natives,
        log: obs.log,
    })
}

impl Recorded {
    /// Packages the recording as a [`Trace`] for `workload` at the given
    /// params and sampling interval.
    pub fn into_trace(self, workload: &str, scale: u32, variant: u64, interval: u64) -> Trace {
        Trace {
            workload: workload.to_string(),
            scale,
            variant,
            interval,
            checksum: self.checksum,
            natives: self.natives,
            records: self.log.into_records(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_core::run_native;

    fn program(name: &str) -> Program {
        let spec = strata_workloads::by_name(name).expect("workload exists");
        (spec.build)(&strata_workloads::Params::default())
    }

    #[test]
    fn recorded_baselines_match_run_native_per_profile() {
        let prog = program("gzip");
        let rec = record(&prog, 1 << 30, ExecTier::Interp).unwrap();
        assert_eq!(rec.natives.len(), 4);
        for summary in &rec.natives {
            let profile = recording_profiles()
                .into_iter()
                .find(|p| p.name == summary.profile)
                .unwrap();
            let direct = run_native(&prog, profile, 1 << 30).unwrap();
            assert_eq!(summary.run, direct, "profile {}", summary.profile);
        }
    }

    #[test]
    fn stream_length_matches_instruction_count() {
        let prog = program("gzip");
        let rec = record(&prog, 1 << 30, ExecTier::Interp).unwrap();
        assert_eq!(
            rec.log.records().len() as u64,
            rec.natives[0].run.instructions
        );
    }

    #[test]
    fn recording_is_deterministic() {
        let prog = program("parser");
        let a = record(&prog, 1 << 30, ExecTier::Interp).unwrap();
        let b = record(&prog, 1 << 30, ExecTier::Interp).unwrap();
        assert_eq!(a.log.records(), b.log.records());
        assert_eq!(a.checksum, b.checksum);
    }
}
