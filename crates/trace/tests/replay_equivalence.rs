//! End-to-end trace fidelity at workload scale:
//!
//! 1. A full (unsampled) recorded trace replayed through
//!    [`DispatchReplay`] reproduces exact-mode mechanism counters for the
//!    key mechanisms of the paper (sieve, IBTC, return cache, and the
//!    rest).
//! 2. The recorder's retire stream is tier-independent and equivalent to
//!    the interpreter across randomized generated programs, and every
//!    recorded trace survives the codec byte-identically.

use strata_arch::ArchProfile;
use strata_core::{DispatchReplay, RetMechanism, Sdt, SdtConfig};
use strata_machine::{ExecTier, Program};
use strata_stats::rng::SmallRng;
use strata_testgen::progen::{build_program, rand_action};
use strata_trace::{record, Trace};
use strata_workloads::Params;

const FUEL: u64 = 1 << 32;

fn workload(name: &str) -> Program {
    let spec = strata_workloads::by_name(name).expect("workload exists");
    (spec.build)(&Params::default())
}

/// The mechanisms the sampled-fidelity acceptance gate names, plus the
/// return-mechanism family.
fn configs() -> Vec<SdtConfig> {
    let mut shadow = SdtConfig::ibtc_inline(512);
    shadow.ret = RetMechanism::ShadowStack { depth: 16 };
    let mut fast = SdtConfig::ibtc_inline(512);
    fast.ret = RetMechanism::FastReturn;
    vec![
        SdtConfig::sieve(256),
        SdtConfig::ibtc_inline(512),
        SdtConfig::ibtc_out_of_line(512),
        SdtConfig::tuned(512, 128), // IBTC + return cache
        SdtConfig::reentry(),
        shadow,
        fast,
    ]
}

#[test]
fn full_trace_replay_reproduces_exact_mode_counters() {
    for name in ["gzip", "parser"] {
        let prog = workload(name);
        let trace = record(&prog, FUEL, ExecTier::Interp)
            .expect("recording succeeds")
            .into_trace(name, 1, 0, 2000);
        for cfg in configs() {
            let mut sdt = Sdt::new(cfg, &prog).expect("sdt constructs");
            let report = sdt
                .run(ArchProfile::x86_like(), FUEL)
                .unwrap_or_else(|e| panic!("[{name}] {} failed: {e}", cfg.describe()));
            let mut rp = DispatchReplay::new(cfg, &prog, ArchProfile::x86_like())
                .expect("replay constructs");
            rp.seek(prog.entry).expect("seek to entry");
            for ev in &trace.records {
                rp.step(ev)
                    .unwrap_or_else(|e| panic!("[{name}] {}: {e}", cfg.describe()));
            }
            assert_eq!(
                rp.stats(),
                report.mech,
                "[{name}] counters diverge under {}",
                cfg.describe()
            );
            assert_eq!(
                rp.per_class(),
                report.per_class,
                "[{name}] per-class counters diverge under {}",
                cfg.describe()
            );
        }
    }
}

#[test]
fn recorder_stream_is_tier_independent_on_randomized_programs() {
    // 100 randomized generated programs: the retire stream the recorder
    // captures must be identical whether the machine interprets or runs
    // its threaded tier, and the trace codec must round-trip it exactly.
    for seed in 0..100u64 {
        let mut rng = SmallRng::seed_from_u64(0x000E_C04D * 1000 + seed);
        let functions = rng.gen_range(1usize..4);
        let actions: Vec<_> = (0..rng.gen_range(4usize..12))
            .map(|_| rand_action(&mut rng, functions))
            .collect();
        let iters = rng.gen_range(2u8..6);
        let prog = build_program(&actions, functions, iters);

        let interp = record(&prog, FUEL, ExecTier::Interp)
            .unwrap_or_else(|e| panic!("seed {seed}: interp recording failed: {e}"));
        let threaded = record(&prog, FUEL, ExecTier::Threaded(Default::default()))
            .unwrap_or_else(|e| panic!("seed {seed}: threaded recording failed: {e}"));
        assert_eq!(
            interp.log.records(),
            threaded.log.records(),
            "seed {seed}: retire stream differs across tiers"
        );
        assert_eq!(interp.checksum, threaded.checksum, "seed {seed}");

        let trace = interp.into_trace("testgen", 1, seed, 500);
        let bytes = trace.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, trace, "seed {seed}: codec round-trip");
        assert_eq!(back.to_bytes(), bytes, "seed {seed}: re-encode determinism");
    }
}
