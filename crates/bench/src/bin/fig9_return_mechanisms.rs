//! Figure 9 — return handling. Returns are usually the most frequent
//! indirect branches; the paper evaluates treating them as generic IBs,
//! routing them through a tagless return cache with in-fragment
//! verification, and fast returns (pushing translated addresses —
//! fastest, transparency-violating).
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig9_return_mechanisms` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig9");
}
