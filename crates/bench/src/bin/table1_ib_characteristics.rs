//! Table 1 — dynamic indirect-branch characteristics of every benchmark:
//! how often each kind of indirect branch retires natively. This is the
//! demand the IB handling mechanisms must serve.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::table1_ib_characteristics` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("table1");
}
