//! Figure 6 — the flags save/restore tax. IBTC lookup code compares the
//! branch target against a tag, clobbering the application's flags; a
//! safe SDT must save and restore them around every lookup. On x86 that
//! means a costly `pushf`/`popf` pair; on SPARC-like machines condition
//! codes are cheap to preserve. `FlagsPolicy::None` models an SDT whose
//! liveness analysis proved the flags dead across the branch.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig6_flags_policy` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig6");
}
