//! Figure 14 (ablation) — fragment-cache capacity. When the cache cannot
//! hold the working set of translated code, the SDT flushes and
//! retranslates; this sweep shows the cliff and where it sits relative to
//! each benchmark's code footprint.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig14_cache_size` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig14");
}
