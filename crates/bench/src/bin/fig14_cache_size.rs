//! Figure 14 (ablation) — fragment-cache capacity. When the cache cannot
//! hold the working set of translated code, the SDT flushes and
//! retranslates; this sweep shows the cliff and where it sits relative to
//! each benchmark's code footprint.

use strata_arch::ArchProfile;
use strata_bench::{fx, print_table, Lab};
use strata_core::SdtConfig;
use strata_stats::Table;

fn main() {
    let mut lab = Lab::new();
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 14: fragment-cache size sweep (IBTC 1024, x86-like)",
        &["cache bytes", "gcc slowdown", "gcc flushes", "perlbmk slowdown", "perlbmk flushes"],
    );
    for kib in [8u32, 12, 16, 24, 32, 64] {
        let mut cfg = SdtConfig::ibtc_inline(1024);
        cfg.cache_limit = Some(kib * 1024);
        let mut row = vec![format!("{}K", kib)];
        for name in ["gcc", "perlbmk"] {
            let native = lab.native(name, &x86).total_cycles;
            let r = lab.translated(name, cfg, &x86);
            row.push(fx(r.slowdown(native)));
            row.push(r.mech.cache_flushes.to_string());
        }
        t.row(row);
    }
    print_table(&t);
    println!(
        "Reading: below the translated-code working set the flush/retranslate\n\
         cycle dominates; once the cache holds the working set, extra capacity is\n\
         free. Code-expanding mechanisms (inlined lookups, sieve stanzas) move\n\
         this cliff — part of the inline-vs-out-of-line trade-off."
    );
}
