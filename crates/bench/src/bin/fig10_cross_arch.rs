//! Figure 10 — the cross-architecture evaluation: the same mechanisms,
//! costed under x86-like, SPARC-like, and MIPS-like profiles. The paper's
//! headline: the most efficient mechanism and configuration depend on the
//! underlying architecture's trap cost, flags cost, and indirect-branch
//! prediction hardware.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig10_cross_arch` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig10");
}
