//! Figure 18 (extension) — mixed per-class dispatch policies. Pits the
//! paper's single-mechanism configurations (returns handled as generic
//! indirect branches) against policies that route indirect jumps,
//! indirect calls, and returns through different mechanisms.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig18_mixed_policy` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig18");
}
