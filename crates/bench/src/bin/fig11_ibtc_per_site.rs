//! Figure 11 — per-site vs shared IBTC tables. A private table per
//! indirect-branch site captures per-branch target locality (a mostly
//! monomorphic branch needs only a handful of entries), at the cost of
//! table space and colder tables.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig11_ibtc_per_site` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig11");
}
