//! Table 2 — best configuration per architecture: a grid search over IB
//! mechanism × size/placement × return mechanism, ranked by geometric-mean
//! slowdown on each architecture profile.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::table2_best_config` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("table2");
}
