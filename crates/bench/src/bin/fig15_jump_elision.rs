//! Figure 15 (ablation) — direct-jump elision (fragment formation). The
//! translator can keep translating through unconditional jumps, removing a
//! taken jump per elision at the cost of tail-duplicated code. Whether it
//! pays depends on predecessor counts and I-cache pressure.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig15_jump_elision` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig15");
}
