//! Figure 4 — IBTC size sensitivity: slowdown and miss rate as the shared
//! inlined table grows from 16 to 65536 entries. The paper's finding:
//! overhead falls steeply until the table covers the dynamic target set,
//! then saturates.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig4_ibtc_size_sweep` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig4");
}
