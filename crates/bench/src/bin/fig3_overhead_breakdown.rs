//! Figure 3 — where the cycles go: per-benchmark breakdown of translated
//! execution into application work, IB dispatch code, context switches,
//! trampolines/call glue, and host-side translator time. Shown for the
//! re-entry baseline (context-switch dominated) and for a tuned IBTC
//! (dispatch-code dominated) to expose the shift the paper describes.

use strata_arch::ArchProfile;
use strata_bench::{names, print_table, Lab};
use strata_core::{Origin, SdtConfig};
use strata_stats::Table;

fn breakdown(lab: &mut Lab, cfg: SdtConfig, title: &str) {
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        title,
        &["benchmark", "app%", "dispatch%", "ctx-switch%", "tramp+glue%", "translator%"],
    );
    for name in names() {
        let r = lab.translated(name, cfg, &x86);
        let total = r.total_cycles as f64;
        let p = |c: u64| format!("{:.1}", c as f64 * 100.0 / total);
        t.row([
            name.to_string(),
            p(r.cycles_for(Origin::App)),
            p(r.cycles_for(Origin::Dispatch)),
            p(r.cycles_for(Origin::ContextSwitch)),
            p(r.cycles_for(Origin::Trampoline) + r.cycles_for(Origin::CallGlue)),
            p(r.translator_cycles),
        ]);
    }
    print_table(&t);
}

fn main() {
    let mut lab = Lab::new();
    breakdown(
        &mut lab,
        SdtConfig::reentry(),
        "Fig. 3a: cycle breakdown under translator re-entry (x86-like)",
    );
    breakdown(
        &mut lab,
        SdtConfig::tuned(4096, 1024),
        "Fig. 3b: cycle breakdown under inlined IBTC + return cache (x86-like)",
    );
    println!(
        "Reading: under re-entry the context switch + translator columns dominate on\n\
         IB-dense benchmarks; the tuned configuration converts nearly all of that\n\
         into (much cheaper) in-cache dispatch code."
    );
}
