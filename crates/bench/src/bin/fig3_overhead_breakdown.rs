//! Figure 3 — where the cycles go: per-benchmark breakdown of translated
//! execution into application work, IB dispatch code, context switches,
//! trampolines/call glue, and host-side translator time. Shown for the
//! re-entry baseline (context-switch dominated) and for a tuned IBTC
//! (dispatch-code dominated) to expose the shift the paper describes.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig3_overhead_breakdown` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig3");
}
