//! Figure 12 — the instruction-cache cost of inlining. Inlined IBTC
//! lookup replicates ~20 instructions at every indirect-branch site; on a
//! machine with a small I-cache that replication turns into fetch stalls,
//! narrowing (or reversing) inlining's win. Measured on the mips-like
//! profile (8 KiB I-cache).

use strata_arch::ArchProfile;
use strata_bench::{fx, names, print_table, Lab};
use strata_core::SdtConfig;
use strata_stats::{geomean, ratio, Table};

fn main() {
    let mut lab = Lab::new();
    let mips = ArchProfile::mips_like();
    const ENTRIES: u32 = 4096;
    let mut t = Table::new(
        "Fig. 12: I-cache pressure of inlined lookups (mips-like, 8 KiB I-cache)",
        &[
            "benchmark",
            "inline slowdown",
            "outline slowdown",
            "inline i$ miss/1k",
            "outline i$ miss/1k",
            "cache bytes in/out",
        ],
    );
    let mut inl = Vec::new();
    let mut out = Vec::new();
    for name in names() {
        let native = lab.native(name, &mips).total_cycles;
        let ri = lab.translated(name, SdtConfig::ibtc_inline(ENTRIES), &mips);
        let ro = lab.translated(name, SdtConfig::ibtc_out_of_line(ENTRIES), &mips);
        inl.push(ri.slowdown(native));
        out.push(ro.slowdown(native));
        t.row([
            name.to_string(),
            fx(ri.slowdown(native)),
            fx(ro.slowdown(native)),
            format!("{:.2}", 1000.0 * ratio(ri.icache_misses, ri.instructions)),
            format!("{:.2}", 1000.0 * ratio(ro.icache_misses, ro.instructions)),
            format!("{}/{}", ri.mech.cache_used_bytes, ro.mech.cache_used_bytes),
        ]);
    }
    t.row([
        "geomean".to_string(),
        fx(geomean(inl).expect("nonempty")),
        fx(geomean(out).expect("nonempty")),
        String::new(),
        String::new(),
        String::new(),
    ]);
    print_table(&t);
    println!(
        "Reading: inlining's per-lookup saving competes with its I-cache\n\
         footprint; with a small I-cache the gap between inline and out-of-line\n\
         closes on code-footprint-heavy benchmarks — configuration must weigh\n\
         both, per architecture."
    );
}
