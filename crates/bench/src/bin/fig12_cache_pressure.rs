//! Figure 12 — the instruction-cache cost of inlining. Inlined IBTC
//! lookup replicates ~20 instructions at every indirect-branch site; on a
//! machine with a small I-cache that replication turns into fetch stalls,
//! narrowing (or reversing) inlining's win. Measured on the mips-like
//! profile (8 KiB I-cache).
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig12_cache_pressure` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig12");
}
