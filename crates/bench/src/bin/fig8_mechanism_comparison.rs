//! Figure 8 — head-to-head comparison of the indirect-branch mechanisms
//! at their saturated sizes: translator re-entry, out-of-line IBTC,
//! inlined IBTC, and the sieve (returns handled as generic IBs
//! throughout, isolating the IB mechanism itself).
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig8_mechanism_comparison` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig8");
}
