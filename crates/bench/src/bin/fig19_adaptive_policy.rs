//! Figure 19 (extension) — adaptive promotion. Compares fixed IBTC and
//! sieve configurations against the adaptive policy that starts every
//! site on a one-entry inline probe and promotes it (inline → private
//! IBTC → shared sieve) as its observed target arity grows.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig19_adaptive_policy` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig19");
}
