//! Figure 5 — inlined IBTC lookup code at every site vs one shared
//! out-of-line routine reached by call/return. Inlining removes a
//! transfer pair per lookup at the cost of code-cache and I-cache
//! footprint.

use strata_arch::ArchProfile;
use strata_bench::{fx, names, print_table, Lab};
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};

fn main() {
    let mut lab = Lab::new();
    let x86 = ArchProfile::x86_like();
    const ENTRIES: u32 = 4096;
    let mut t = Table::new(
        "Fig. 5: inlined vs out-of-line IBTC lookup (4096 entries, x86-like)",
        &["benchmark", "inline", "out-of-line", "outline penalty", "cache bytes in/out"],
    );
    let mut inl = Vec::new();
    let mut out = Vec::new();
    for name in names() {
        let native = lab.native(name, &x86).total_cycles;
        let ri = lab.translated(name, SdtConfig::ibtc_inline(ENTRIES), &x86);
        let ro = lab.translated(name, SdtConfig::ibtc_out_of_line(ENTRIES), &x86);
        let si = ri.slowdown(native);
        let so = ro.slowdown(native);
        inl.push(si);
        out.push(so);
        t.row([
            name.to_string(),
            fx(si),
            fx(so),
            format!("{:+.1}%", (so / si - 1.0) * 100.0),
            format!("{}/{}", ri.mech.cache_used_bytes, ro.mech.cache_used_bytes),
        ]);
    }
    let gi = geomean(inl.iter().copied()).expect("nonempty");
    let go = geomean(out.iter().copied()).expect("nonempty");
    t.row([
        "geomean".to_string(),
        fx(gi),
        fx(go),
        format!("{:+.1}%", (go / gi - 1.0) * 100.0),
        String::new(),
    ]);
    print_table(&t);
    println!(
        "Reading: the shared routine pays an extra call/return per lookup, so\n\
         inlining wins wherever IBs are frequent — but note the smaller code-cache\n\
         footprint of the out-of-line variant (see fig12 for the I-cache flip side)."
    );
}
