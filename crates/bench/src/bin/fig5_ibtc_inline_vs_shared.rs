//! Figure 5 — inlined IBTC lookup code at every site vs one shared
//! out-of-line routine reached by call/return. Inlining removes a
//! transfer pair per lookup at the cost of code-cache and I-cache
//! footprint.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig5_ibtc_inline_vs_shared` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig5");
}
