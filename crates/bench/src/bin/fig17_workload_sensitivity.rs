//! Figure 17 (methodology) — workload-instance sensitivity. The stand-in
//! workloads are generated; this experiment re-runs the headline
//! configuration over several statistically equivalent instances
//! (different generator seeds) to show the conclusions do not hinge on
//! one particular instance.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig17_workload_sensitivity` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig17");
}
