//! Figure 17 (methodology) — workload-instance sensitivity. The stand-in
//! workloads are generated; this experiment re-runs the headline
//! configuration over several statistically equivalent instances
//! (different generator seeds) to show the conclusions do not hinge on
//! one particular instance.

use strata_arch::ArchProfile;
use strata_bench::{fx, print_table, FUEL};
use strata_core::{run_native, Sdt, SdtConfig};
use strata_stats::{geomean, Table};
use strata_workloads::{registry, Params};

const VARIANTS: u64 = 5;

fn main() {
    let x86 = ArchProfile::x86_like();
    let cfg = SdtConfig::ibtc_inline(4096);
    let mut t = Table::new(
        "Fig. 17: slowdown across generated workload instances (IBTC 4096, x86-like)",
        &["benchmark", "variant 0", "min", "max", "spread"],
    );
    let mut geo_by_variant: Vec<Vec<f64>> = vec![Vec::new(); VARIANTS as usize];
    for spec in registry() {
        let mut slowdowns = Vec::new();
        for variant in 0..VARIANTS {
            let params = Params { scale: 1, variant };
            let program = (spec.build)(&params);
            let native =
                run_native(&program, x86.clone(), FUEL).expect("native run succeeds");
            let report = Sdt::new(cfg, &program)
                .expect("sdt constructs")
                .run(x86.clone(), FUEL)
                .expect("run completes");
            assert_eq!(report.checksum, native.checksum);
            let s = report.slowdown(native.total_cycles);
            slowdowns.push(s);
            geo_by_variant[variant as usize].push(s);
        }
        let min = slowdowns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = slowdowns.iter().copied().fold(0.0f64, f64::max);
        t.row([
            spec.name.to_string(),
            fx(slowdowns[0]),
            fx(min),
            fx(max),
            format!("{:.1}%", (max / min - 1.0) * 100.0),
        ]);
    }
    let geos: Vec<f64> = geo_by_variant
        .iter()
        .map(|v| geomean(v.iter().copied()).expect("nonempty"))
        .collect();
    let gmin = geos.iter().copied().fold(f64::INFINITY, f64::min);
    let gmax = geos.iter().copied().fold(0.0f64, f64::max);
    t.row([
        "geomean".to_string(),
        fx(geos[0]),
        fx(gmin),
        fx(gmax),
        format!("{:.1}%", (gmax / gmin - 1.0) * 100.0),
    ]);
    print_table(&t);
    println!(
        "Reading: per-benchmark slowdowns move by at most a few percent across\n\
         generated instances and the geomean barely moves — the reproduction's\n\
         conclusions are properties of the IB profiles, not of one particular\n\
         random stream. (Seeds vary data, token streams, opcode mixes, and\n\
         object layouts; code structure is held fixed.)"
    );
}
