//! Figure 13 (ablation) — fragment linking. Strata patches direct-branch
//! exits into fragment-to-fragment jumps after their first execution;
//! without linking, *every* taken direct branch pays a full translator
//! crossing. This ablation isolates how much of the SDT's viability comes
//! from linking before any IB mechanism even matters.

use strata_arch::ArchProfile;
use strata_bench::{fx, names, print_table, Lab};
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};

fn main() {
    let mut lab = Lab::new();
    let x86 = ArchProfile::x86_like();
    let linked = SdtConfig::ibtc_inline(4096);
    let mut unlinked = linked;
    unlinked.link_fragments = false;

    let mut t = Table::new(
        "Fig. 13: fragment linking ablation (IBTC 4096, x86-like)",
        &["benchmark", "linked", "unlinked", "unlinked translator entries"],
    );
    let mut l = Vec::new();
    let mut u = Vec::new();
    for name in names() {
        let native = lab.native(name, &x86).total_cycles;
        let rl = lab.translated(name, linked, &x86);
        let ru = lab.translated(name, unlinked, &x86);
        l.push(rl.slowdown(native));
        u.push(ru.slowdown(native));
        t.row([
            name.to_string(),
            fx(rl.slowdown(native)),
            fx(ru.slowdown(native)),
            ru.mech.translator_entries.to_string(),
        ]);
    }
    t.row([
        "geomean".to_string(),
        fx(geomean(l).expect("nonempty")),
        fx(geomean(u).expect("nonempty")),
        String::new(),
    ]);
    print_table(&t);
    println!(
        "Reading: without linking even the loop kernels collapse — every taken\n\
         branch is a context switch. Linking is the table-stakes optimization the\n\
         paper assumes before it starts optimizing indirect branches."
    );
}
