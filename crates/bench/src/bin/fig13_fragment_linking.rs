//! Figure 13 (ablation) — fragment linking. Strata patches direct-branch
//! exits into fragment-to-fragment jumps after their first execution;
//! without linking, *every* taken direct branch pays a full translator
//! crossing. This ablation isolates how much of the SDT's viability comes
//! from linking before any IB mechanism even matters.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig13_fragment_linking` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig13");
}
