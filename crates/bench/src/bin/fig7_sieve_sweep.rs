//! Figure 7 — sieve bucket-count sensitivity. With few buckets, targets
//! share chains and every dispatch walks multiple compare-and-branch
//! stanzas; with many buckets chains stay short and a hit is one table
//! load plus one stanza ending in a *direct* jump.

use strata_arch::ArchProfile;
use strata_bench::{fx, names, print_table, Lab};
use strata_core::SdtConfig;
use strata_stats::{geomean, Table};

fn main() {
    let mut lab = Lab::new();
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 7: sieve bucket-count sweep (x86-like)",
        &["buckets", "geomean slowdown", "mean chain", "max chain", "perlbmk", "gcc"],
    );
    for shift in [4u32, 6, 8, 10, 12, 14, 16] {
        let buckets = 1u32 << shift;
        let cfg = SdtConfig::sieve(buckets);
        let mut slowdowns = Vec::new();
        let mut mean_chain: f64 = 0.0;
        let mut max_chain = 0u32;
        let mut pick = [0.0f64; 2];
        for name in names() {
            let native = lab.native(name, &x86).total_cycles;
            let r = lab.translated(name, cfg, &x86);
            let s = r.slowdown(native);
            slowdowns.push(s);
            mean_chain = mean_chain.max(r.mech.sieve_mean_chain);
            max_chain = max_chain.max(r.mech.sieve_max_chain);
            match name {
                "perlbmk" => pick[0] = s,
                "gcc" => pick[1] = s,
                _ => {}
            }
        }
        t.row([
            buckets.to_string(),
            fx(geomean(slowdowns.iter().copied()).expect("nonempty")),
            format!("{mean_chain:.2}"),
            max_chain.to_string(),
            fx(pick[0]),
            fx(pick[1]),
        ]);
    }
    print_table(&t);
    println!(
        "Reading: slowdown tracks chain length; once buckets exceed the dynamic\n\
         target count, chains are ~1 stanza and performance saturates. (Chain\n\
         columns report the worst benchmark at each size.)"
    );
}
