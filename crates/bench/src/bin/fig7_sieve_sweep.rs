//! Figure 7 — sieve bucket-count sensitivity. With few buckets, targets
//! share chains and every dispatch walks multiple compare-and-branch
//! stanzas; with many buckets chains stay short and a hit is one table
//! load plus one stanza ending in a *direct* jump.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig7_sieve_sweep` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig7");
}
