//! Figure 16 (ablation) — IBTC associativity. At the same total entry
//! budget, a two-way table halves the index space but survives pairwise
//! conflicts; whether that beats direct mapping depends on whether misses
//! are conflict- or capacity-driven.

use strata_arch::ArchProfile;
use strata_bench::{fx, names, pct, print_table, Lab};
use strata_core::SdtConfig;
use strata_stats::{geomean, ratio, Table};

fn main() {
    let mut lab = Lab::new();
    let x86 = ArchProfile::x86_like();
    let mut t = Table::new(
        "Fig. 16: IBTC associativity at equal entry budgets (x86-like)",
        &["entries", "direct geomean", "direct miss", "2-way geomean", "2-way miss"],
    );
    for entries in [64u32, 256, 1024, 4096] {
        let mut row = vec![entries.to_string()];
        for ways in [1u8, 2] {
            let mut cfg = SdtConfig::ibtc_inline(entries);
            cfg.ibtc_ways = ways;
            let mut slowdowns = Vec::new();
            let mut misses = 0u64;
            let mut dispatches = 0u64;
            for name in names() {
                let native = lab.native(name, &x86).total_cycles;
                let r = lab.translated(name, cfg, &x86);
                slowdowns.push(r.slowdown(native));
                misses += r.mech.ib_misses;
                dispatches += r.mech.ib_dispatches + r.mech.ret_dispatches;
            }
            row.push(fx(geomean(slowdowns).expect("nonempty")));
            row.push(pct(ratio(misses, dispatches)));
        }
        t.row(row);
    }
    print_table(&t);
    println!(
        "Reading: associativity pays only in the conflict-dominated regime\n\
         (working set fits, indices collide); once misses are capacity-driven\n\
         the halved index space and the extra way-1 probe instructions cancel\n\
         the benefit. Strata-style SDTs ship direct-mapped tables for exactly\n\
         this reason — sizing up is cheaper than associativity."
    );
}
