//! Figure 16 (ablation) — IBTC associativity. At the same total entry
//! budget, a two-way table halves the index space but survives pairwise
//! conflicts; whether that beats direct mapping depends on whether misses
//! are conflict- or capacity-driven.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig16_ibtc_assoc` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig16");
}
