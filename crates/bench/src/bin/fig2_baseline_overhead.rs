//! Figure 2 — baseline SDT slowdown when every indirect branch re-enters
//! the translator (full context switch + fragment-map lookup). The
//! paper's starting point: IB handling dominates SDT overhead.
//!
//! This binary is a thin delegate: the experiment itself is defined once
//! in `strata_expt::experiments::fig2_baseline_overhead` and shared with `strata bench`.

fn main() {
    strata_expt::run_single("fig2");
}
