//! # strata-bench — experiment binaries regenerating the paper's tables
//! and figures
//!
//! Each binary under `src/bin/` regenerates one table or figure of
//! *“Evaluating Indirect Branch Handling Mechanisms in Software Dynamic
//! Translation Systems”* (CGO 2007); DESIGN.md carries the full index and
//! EXPERIMENTS.md the measured results. Run one with:
//!
//! ```text
//! cargo run --release -p strata-bench --bin fig4_ibtc_size_sweep
//! ```
//!
//! Environment knobs (parsed once by [`strata_expt::EnvKnobs`]):
//!
//! * `STRATA_SCALE` — workload scale factor (default 1),
//! * `STRATA_VARIANT` — workload generator variant seed (default 0),
//! * `STRATA_CSV=1` — additionally print each table as CSV.
//!
//! The experiments themselves now live in `strata-expt`; the binaries are
//! thin delegates to [`strata_expt::run_single`]. This library crate keeps
//! the interactive [`Lab`] harness — workload construction, cached native
//! baselines, slowdown helpers, and uniform table printing — for ad-hoc
//! exploration and the microbenchmarks.

use std::collections::HashMap;

use strata_arch::ArchProfile;
use strata_core::{run_native, NativeRun, RunReport, Sdt, SdtConfig};
use strata_machine::Program;
use strata_stats::{geomean, Table};
use strata_workloads::{registry, Params, Spec};

/// Fuel ceiling for every run — far above any workload at default scale.
pub const FUEL: u64 = 4_000_000_000;

/// Workload scale and variant, from `STRATA_SCALE` / `STRATA_VARIANT`
/// (defaults 1 and 0). Delegates to [`strata_expt::EnvKnobs`] so every
/// entry point agrees on the parsing rules.
pub fn params() -> Params {
    strata_expt::EnvKnobs::from_env().params()
}

/// The benchmark names in presentation order.
pub fn names() -> Vec<&'static str> {
    registry().iter().map(|s| s.name).collect()
}

/// An experiment session: pre-built workloads plus memoized native
/// baselines per architecture.
pub struct Lab {
    programs: Vec<(&'static Spec, Program)>,
    natives: HashMap<(&'static str, &'static str), NativeRun>,
}

impl Lab {
    /// Builds all workloads at the session scale.
    pub fn new() -> Lab {
        let p = params();
        Lab {
            programs: registry().iter().map(|s| (s, (s.build)(&p))).collect(),
            natives: HashMap::new(),
        }
    }

    /// The program for a benchmark.
    ///
    /// # Panics
    ///
    /// Panics on an unknown benchmark name.
    pub fn program(&self, name: &str) -> &Program {
        &self
            .programs
            .iter()
            .find(|(s, _)| s.name == name)
            .expect("known benchmark")
            .1
    }

    /// Native baseline for (`name`, `profile`), memoized.
    pub fn native(&mut self, name: &'static str, profile: &ArchProfile) -> NativeRun {
        let key = (name, profile.name);
        if let Some(r) = self.natives.get(&key) {
            return r.clone();
        }
        let r = run_native(self.program(name), profile.clone(), FUEL)
            .unwrap_or_else(|e| panic!("native {name} on {}: {e}", profile.name));
        self.natives.insert(key, r.clone());
        r
    }

    /// Runs `name` under translation with `cfg` on `profile`.
    pub fn translated(&mut self, name: &str, cfg: SdtConfig, profile: &ArchProfile) -> RunReport {
        let mut sdt = Sdt::new(cfg, self.program(name))
            .unwrap_or_else(|e| panic!("sdt for {name} / {}: {e}", cfg.describe()));
        let report = sdt
            .run(profile.clone(), FUEL)
            .unwrap_or_else(|e| panic!("run {name} / {} on {}: {e}", cfg.describe(), profile.name));
        let native = self.native(
            registry()
                .iter()
                .find(|s| s.name == name)
                .expect("known")
                .name,
            profile,
        );
        assert_eq!(
            report.checksum,
            native.checksum,
            "{name}/{}: translated run diverged from native",
            cfg.describe()
        );
        report
    }

    /// Slowdown of `cfg` on `name` under `profile`.
    pub fn slowdown(&mut self, name: &'static str, cfg: SdtConfig, profile: &ArchProfile) -> f64 {
        let native = self.native(name, profile).total_cycles;
        self.translated(name, cfg, profile).slowdown(native)
    }

    /// Geometric-mean slowdown of `cfg` across all benchmarks.
    pub fn geomean_slowdown(&mut self, cfg: SdtConfig, profile: &ArchProfile) -> f64 {
        let names = names();
        geomean(names.iter().map(|n| self.slowdown(n, cfg, profile)))
            .expect("nonempty benchmark set")
    }
}

impl Default for Lab {
    fn default() -> Lab {
        Lab::new()
    }
}

/// Prints a table as aligned text (always) and CSV (when `STRATA_CSV=1`).
pub fn print_table(table: &Table) {
    println!("{}", table.render_text());
    if strata_expt::EnvKnobs::from_env().csv {
        println!("{}", table.render_csv());
    }
}

/// Formats a slowdown as `1.234x`.
pub fn fx(v: f64) -> String {
    format!("{v:.3}x")
}

/// Formats a rate as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_and_memoizes() {
        let mut lab = Lab::new();
        let x86 = ArchProfile::x86_like();
        let a = lab.native("gzip", &x86);
        let b = lab.native("gzip", &x86);
        assert_eq!(a, b);
        assert_eq!(lab.natives.len(), 1);
    }

    #[test]
    fn formatting() {
        assert_eq!(fx(1.5), "1.500x");
        assert_eq!(pct(0.1234), "12.34%");
    }
}
