//! Criterion microbenchmarks for the substrate components: ISA
//! encode/decode, the assembler, interpreter stepping throughput, cache
//! and predictor simulation, translation, and an end-to-end translated
//! run. These quantify the *simulator's* host-side cost, complementing the
//! guest-cycle experiments in `src/bin/`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use strata_arch::{ArchModel, ArchProfile, Btb, CacheConfig, CacheSim, CondPredictor};
use strata_asm::assemble;
use strata_core::{Sdt, SdtConfig};
use strata_isa::{decode, encode, Instr, Reg};
use strata_machine::{layout, Machine, NullObserver, Program, StepOutcome};
use strata_workloads::{by_name, Params};

fn bench_isa(c: &mut Criterion) {
    let instrs: Vec<Instr> = (0..256u32)
        .map(|i| match i % 4 {
            0 => Instr::Add {
                rd: Reg::try_from((i % 16) as u8).unwrap(),
                rs1: Reg::R1,
                rs2: Reg::R2,
            },
            1 => Instr::Lw { rd: Reg::R3, rs1: Reg::SP, off: (i as i16) - 128 },
            2 => Instr::Beq { off: (i as i16) - 128 },
            _ => Instr::Jmp { target: (i % 1024) * 4 },
        })
        .collect();
    let words: Vec<u32> = instrs.iter().map(encode).collect();

    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(instrs.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            for i in &instrs {
                black_box(encode(black_box(i)));
            }
        })
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            for w in &words {
                black_box(decode(black_box(*w)).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let src = r"
        li r1, 100
    top:
        addi r1, r1, -1
        cmpi r1, 0
        call f
        bne top
        halt
    f:
        add r2, r2, r1
        ret
    ";
    c.bench_function("asm/assemble_small_program", |b| {
        b.iter(|| black_box(assemble(layout::APP_BASE, black_box(src)).unwrap()))
    });
}

fn interpreter_program() -> Program {
    let code = assemble(
        layout::APP_BASE,
        r"
        li r1, 100000
    top:
        addi r1, r1, -1
        xor r2, r2, r1
        cmpi r1, 0
        bne top
        halt
    ",
    )
    .unwrap();
    Program::new("spin", code, Vec::new())
}

fn bench_interpreter(c: &mut Criterion) {
    let program = interpreter_program();
    let mut g = c.benchmark_group("machine");
    g.throughput(Throughput::Elements(400_002));
    g.bench_function("interpret_400k_instrs", |b| {
        b.iter(|| {
            let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
            program.load(&mut m).unwrap();
            assert_eq!(m.run(&mut NullObserver, 10_000_000).unwrap(), StepOutcome::Halted);
        })
    });
    g.bench_function("interpret_400k_instrs_costed", |b| {
        b.iter(|| {
            let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
            program.load(&mut m).unwrap();
            let mut model = ArchModel::new(ArchProfile::x86_like());
            assert_eq!(m.run(&mut model, 10_000_000).unwrap(), StepOutcome::Halted);
            black_box(model.total_cycles());
        })
    });
    g.finish();
}

fn bench_simulators(c: &mut Criterion) {
    let mut g = c.benchmark_group("arch");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("cache_access_stride", |b| {
        let mut cache = CacheSim::new(CacheConfig { sets: 128, ways: 4, line_bytes: 32 });
        b.iter(|| {
            for i in 0..4096u32 {
                black_box(cache.access(i * 8));
            }
        })
    });
    g.bench_function("gshare_update", |b| {
        let mut p = CondPredictor::new(12);
        b.iter(|| {
            for i in 0..4096u32 {
                black_box(p.predict_and_update(i * 4, i % 3 != 0));
            }
        })
    });
    g.bench_function("btb_update", |b| {
        let mut btb = Btb::new(512);
        b.iter(|| {
            for i in 0..4096u32 {
                black_box(btb.predict_and_update(i * 4, (i % 7) * 64));
            }
        })
    });
    g.finish();
}

fn bench_translation(c: &mut Criterion) {
    let program = (by_name("gcc").unwrap().build)(&Params::default());
    c.bench_function("sdt/construct_and_translate_entry", |b| {
        b.iter(|| {
            let mut sdt = Sdt::new(SdtConfig::ibtc_inline(1024), &program).unwrap();
            // Run just far enough to force initial translation work.
            let _ = black_box(sdt.run(ArchProfile::x86_like(), 50_000));
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let program = interpreter_program();
    c.bench_function("sdt/run_400k_instr_program", |b| {
        b.iter(|| {
            let mut sdt = Sdt::new(SdtConfig::ibtc_inline(1024), &program).unwrap();
            let report = sdt.run(ArchProfile::x86_like(), 50_000_000).unwrap();
            black_box(report.total_cycles);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_isa, bench_assembler, bench_interpreter, bench_simulators,
              bench_translation, bench_end_to_end
}
criterion_main!(benches);
