//! Microbenchmarks for the substrate components: ISA encode/decode, the
//! assembler, interpreter stepping throughput, cache and predictor
//! simulation, translation, and an end-to-end translated run. These
//! quantify the *simulator's* host-side cost, complementing the
//! guest-cycle experiments in `src/bin/`.
//!
//! Criterion is not available in the offline build environment, so this is
//! a self-contained `harness = false` benchmark: each workload is timed
//! over enough iterations to exceed a minimum measurement window and the
//! median per-iteration time is reported (`cargo bench -p strata-bench`).
//!
//! Medians are also persisted as an artifact-shaped JSON document
//! (default `results/microbench.json`, override with `STRATA_BENCH_OUT`,
//! disable with `STRATA_BENCH_OUT=-`) so `strata bench --baseline` can
//! diff substrate performance with the same machinery that gates the
//! guest-cycle experiments. Wall-clock medians are host-dependent and
//! noisy, so they are *not* part of the committed default baseline — see
//! EXPERIMENTS.md for how to opt a machine-local baseline in.

use std::hint::black_box;
use std::time::Instant;

use strata_stats::Json;

use strata_arch::{
    ArchModel, ArchProfile, Btb, CacheConfig, CacheSim, CondPredictor, Ittage, SetAssocBtb,
    TargetPredictor,
};
use strata_asm::assemble;
use strata_core::{ClassPolicy, Sdt, SdtConfig};
use strata_isa::{decode, encode, Instr, Reg};
use strata_machine::{layout, ExecTier, Machine, NullObserver, Program, StepOutcome, TierConfig};
use strata_stats::Table;
use strata_workloads::{by_name, Params};

/// Times `f` over repeated batches and returns the median per-call
/// nanoseconds across batches.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // Warm up, then measure batches sized to take ~10ms each.
    f();
    let probe = Instant::now();
    f();
    let one = probe.elapsed().as_nanos().max(1) as u64;
    let batch = (10_000_000 / one).clamp(1, 100_000) as usize;
    let mut samples = Vec::with_capacity(9);
    for _ in 0..9 {
        let t = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn human(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

struct Bench {
    table: Table,
}

impl Bench {
    fn new() -> Bench {
        Bench {
            table: Table::new(
                "microbenchmarks (median)",
                &["benchmark", "time", "per-element"],
            ),
        }
    }

    /// Runs one benchmark; `elements` is the work-unit count for a derived
    /// per-element rate (0 = no rate column).
    fn run(&mut self, name: &str, elements: u64, f: impl FnMut()) {
        let ns = time_ns(f);
        let per = if elements > 0 {
            human(ns / elements as f64)
        } else {
            String::new()
        };
        self.table.row([name.to_string(), human(ns), per]);
        eprintln!("  {name}: {}", human(ns));
    }

    /// Writes the medians as an artifact-shaped JSON document so the
    /// baseline differ treats them like any experiment.
    fn write_json(&self, path: &str) {
        let doc = Json::obj([
            ("id", Json::str("microbench")),
            (
                "title",
                Json::str("Substrate microbenchmark medians (host wall clock)"),
            ),
            ("tables", Json::arr([self.table.to_json()])),
            ("notes", Json::arr([])),
        ]);
        if let Some(parent) = std::path::Path::new(path).parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("warning: create {}: {e}", parent.display());
                return;
            }
        }
        match std::fs::write(path, doc.render_pretty() + "\n") {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: write {path}: {e}"),
        }
    }
}

fn interpreter_program() -> Program {
    let code = assemble(
        layout::APP_BASE,
        r"
        li r1, 100000
    top:
        addi r1, r1, -1
        xor r2, r2, r1
        cmpi r1, 0
        bne top
        halt
    ",
    )
    .unwrap();
    Program::new("spin", code, Vec::new())
}

/// A program that chains through `sites` indirect jumps, each in its own
/// basic block, so translating it emits exactly `sites` dispatch
/// sequences for the active jump strategy.
fn indirect_chain_program(sites: u32) -> Program {
    let mut src = String::new();
    for i in 0..sites {
        src.push_str(&format!("    li r9, site{i}\n    jr r9\nsite{i}:\n"));
    }
    src.push_str("    halt\n");
    let code = assemble(layout::APP_BASE, &src).unwrap();
    Program::new("chain", code, Vec::new())
}

fn main() {
    let mut b = Bench::new();

    // ISA encode/decode.
    let instrs: Vec<Instr> = (0..256u32)
        .map(|i| match i % 4 {
            0 => Instr::Add {
                rd: Reg::try_from((i % 16) as u8).unwrap(),
                rs1: Reg::R1,
                rs2: Reg::R2,
            },
            1 => Instr::Lw {
                rd: Reg::R3,
                rs1: Reg::SP,
                off: (i as i16) - 128,
            },
            2 => Instr::Beq {
                off: (i as i16) - 128,
            },
            _ => Instr::Jmp {
                target: (i % 1024) * 4,
            },
        })
        .collect();
    let words: Vec<u32> = instrs.iter().map(encode).collect();
    b.run("isa/encode_256", 256, || {
        for i in &instrs {
            black_box(encode(black_box(i)));
        }
    });
    b.run("isa/decode_256", 256, || {
        for w in &words {
            black_box(decode(black_box(*w)).unwrap());
        }
    });

    // Assembler.
    let src = r"
        li r1, 100
    top:
        addi r1, r1, -1
        cmpi r1, 0
        call f
        bne top
        halt
    f:
        add r2, r2, r1
        ret
    ";
    b.run("asm/assemble_small_program", 0, || {
        black_box(assemble(layout::APP_BASE, black_box(src)).unwrap());
    });

    // Interpreter throughput.
    let program = interpreter_program();
    b.run("machine/interpret_400k_instrs", 400_002, || {
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        program.load(&mut m).unwrap();
        assert_eq!(
            m.run(&mut NullObserver, 10_000_000).unwrap(),
            StepOutcome::Halted
        );
    });
    b.run("machine/interpret_400k_instrs_costed", 400_002, || {
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        program.load(&mut m).unwrap();
        let mut model = ArchModel::new(ArchProfile::x86_like());
        assert_eq!(m.run(&mut model, 10_000_000).unwrap(), StepOutcome::Halted);
        black_box(model.total_cycles());
    });

    // The same two workloads under the threaded execution tier: identical
    // retire streams (and therefore identical charged cycles), different
    // host dispatch. The costed variant is Amdahl-bound by the cost
    // model's own per-instruction work, which the tier cannot remove.
    let tier = ExecTier::Threaded(TierConfig::default());
    b.run("machine/interpret_400k_instrs_threaded", 400_002, || {
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        program.load(&mut m).unwrap();
        m.set_tier(tier);
        assert_eq!(
            m.run(&mut NullObserver, 10_000_000).unwrap(),
            StepOutcome::Halted
        );
    });
    b.run(
        "machine/interpret_400k_instrs_costed_threaded",
        400_002,
        || {
            let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
            program.load(&mut m).unwrap();
            m.set_tier(tier);
            let mut model = ArchModel::new(ArchProfile::x86_like());
            assert_eq!(m.run(&mut model, 10_000_000).unwrap(), StepOutcome::Halted);
            black_box(model.total_cycles());
        },
    );

    // Stepper dispatch in isolation: construction cost (dominated by guest
    // RAM + predecode-page setup) and warm-dispatch throughput (the fused
    // fetch/exec loop on already-predecoded pages, no per-iteration
    // construction). The spin program re-initializes `r1` at its entry, so
    // resetting the pc replays the full 400k-instruction run.
    b.run("machine/construct_16mib", 0, || {
        black_box(Machine::new(layout::DEFAULT_MEM_BYTES));
    });
    let mut warm = Machine::new(layout::DEFAULT_MEM_BYTES);
    program.load(&mut warm).unwrap();
    b.run("machine/dispatch_warm_400k_instrs", 400_002, || {
        warm.cpu_mut().pc = layout::APP_BASE;
        assert_eq!(
            warm.run(&mut NullObserver, 10_000_000).unwrap(),
            StepOutcome::Halted
        );
    });
    // Warm threaded dispatch: the superblocks survive across iterations
    // (the code is never invalidated), so this is the steady-state cost
    // of hot-region execution — the headline the tier exists for.
    let mut warm_threaded = Machine::new(layout::DEFAULT_MEM_BYTES);
    program.load(&mut warm_threaded).unwrap();
    warm_threaded.set_tier(tier);
    b.run(
        "machine/dispatch_warm_400k_instrs_threaded",
        400_002,
        || {
            warm_threaded.cpu_mut().pc = layout::APP_BASE;
            assert_eq!(
                warm_threaded.run(&mut NullObserver, 10_000_000).unwrap(),
                StepOutcome::Halted
            );
        },
    );

    // Microarchitecture simulators.
    let mut cache = CacheSim::new(CacheConfig {
        sets: 128,
        ways: 4,
        line_bytes: 32,
    });
    b.run("arch/cache_access_stride_4096", 4096, || {
        for i in 0..4096u32 {
            black_box(cache.access(i * 8));
        }
    });
    let mut predictor = CondPredictor::new(12);
    b.run("arch/gshare_update_4096", 4096, || {
        for i in 0..4096u32 {
            black_box(predictor.predict_and_update(i * 4, i % 3 != 0));
        }
    });
    let mut btb = Btb::new(512);
    b.run("arch/btb_update_4096", 4096, || {
        for i in 0..4096u32 {
            black_box(btb.predict_and_update(i * 4, (i % 7) * 64));
        }
    });
    // The predictor zoo behind `--predictor`: same access pattern as the
    // legacy BTB row, so the deltas are pure model cost (LRU search for
    // the set-associative table, folded-history tag lookups for ITTAGE).
    let mut sa_btb = SetAssocBtb::new(128, 4);
    b.run("arch/setassoc_btb_update_4096", 4096, || {
        for i in 0..4096u32 {
            black_box(sa_btb.predict_and_update(i * 4, (i % 7) * 64));
        }
    });
    let mut ittage = Ittage::new(4);
    b.run("arch/ittage_update_4096", 4096, || {
        for i in 0..4096u32 {
            black_box(ittage.predict_and_update(i * 4, (i % 7) * 64));
        }
    });

    // Translation and end-to-end.
    let gcc = (by_name("gcc").unwrap().build)(&Params::default());
    b.run("sdt/construct_and_translate_entry", 0, || {
        let mut sdt = Sdt::new(SdtConfig::ibtc_inline(1024), &gcc).unwrap();
        // Run just far enough to force initial translation work.
        let _ = black_box(sdt.run(ArchProfile::x86_like(), 50_000));
    });
    let spin = interpreter_program();
    b.run("sdt/run_400k_instr_program", 0, || {
        let mut sdt = Sdt::new(SdtConfig::ibtc_inline(1024), &spin).unwrap();
        let report = sdt.run(ArchProfile::x86_like(), 50_000_000).unwrap();
        black_box(report.total_cycles);
    });

    // Dispatch-emission cost per strategy: translating a 32-site indirect
    // chain emits exactly 32 jump-dispatch sequences, so the per-element
    // column approximates one site's emission (plus one cold execution)
    // under each strategy. Construction cost is identical across rows.
    let chain = indirect_chain_program(32);
    let two_way = {
        let mut c = SdtConfig::ibtc_inline(512);
        c.ibtc_ways = 2;
        c
    };
    let adaptive = {
        let mut c = SdtConfig::ibtc_inline(512);
        c.policy.jump = ClassPolicy::Adaptive {
            ibtc_entries: 256,
            sieve_buckets: 512,
            sieve_arity: 8,
        };
        c
    };
    let predictive = {
        let mut c = SdtConfig::ibtc_inline(512);
        c.policy.jump = ClassPolicy::Predictive {
            sieve_buckets: 512,
            probation: 64,
        };
        c
    };
    let strategies: [(&str, SdtConfig); 8] = [
        ("emit/reentry_32sites", SdtConfig::reentry()),
        ("emit/ibtc_inline_32sites", SdtConfig::ibtc_inline(512)),
        ("emit/ibtc_2way_32sites", two_way),
        (
            "emit/ibtc_outline_32sites",
            SdtConfig::ibtc_out_of_line(512),
        ),
        ("emit/ibtc_persite_32sites", {
            let mut c = SdtConfig::ibtc_inline(512);
            c.ib = strata_core::IbMechanism::Ibtc {
                entries: 64,
                scope: strata_core::IbtcScope::PerSite,
                placement: strata_core::IbtcPlacement::Inline,
            };
            c
        }),
        ("emit/sieve_32sites", SdtConfig::sieve(512)),
        ("emit/adaptive_32sites", adaptive),
        ("emit/predictive_32sites", predictive),
    ];
    for (name, cfg) in strategies {
        b.run(name, 32, || {
            let mut sdt = Sdt::new(cfg, &chain).unwrap();
            let report = sdt.run(ArchProfile::x86_like(), 1_000_000).unwrap();
            assert!(report.halted);
            black_box(report.total_cycles);
        });
    }

    // Trace codec: block-compressed encode/decode of a real recorded
    // retire trace — the cost sampled mode pays per trace load, and the
    // rate at which replay streams records off disk. Per-element is one
    // retired instruction.
    let recorded = strata_trace::record(&gcc, 50_000_000, ExecTier::Interp).unwrap();
    let n = recorded.log.records().len() as u64;
    let trace = recorded.into_trace("gcc", 1, 0, 1529);
    let bytes = trace.to_bytes();
    b.run(&format!("trace/encode_{n}_records"), n, || {
        black_box(black_box(&trace).to_bytes());
    });
    b.run(&format!("trace/decode_{n}_records"), n, || {
        black_box(strata_trace::Trace::from_bytes(black_box(&bytes)).unwrap());
    });

    println!("{}", b.table.render_text());

    // `cargo bench` sets the working directory to the package root
    // (`crates/bench/`), so anchor the default at the workspace root.
    let out = std::env::var("STRATA_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/microbench.json").into()
    });
    if out != "-" {
        b.write_json(&out);
    }
}
