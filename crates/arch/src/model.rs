use strata_isa::{ControlKind, InstrClass};
use strata_machine::{ExecutionObserver, RetireEvent};

use crate::target::{PredictorSpec, TargetPredictor};
use crate::{ArchProfile, CacheSim, CondPredictor, Ras};

/// Detailed cycle and event accounting produced by an [`ArchModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Cycles from per-class base costs.
    pub base_cycles: u64,
    /// Cycles from I-cache miss penalties.
    pub icache_stall_cycles: u64,
    /// Cycles from D-cache miss penalties.
    pub dcache_stall_cycles: u64,
    /// Cycles from branch mispredictions (all kinds) and taken-branch
    /// bubbles.
    pub branch_stall_cycles: u64,
    /// Cycles from flags save/restore taxes.
    pub flags_cycles: u64,
    /// Cycles from trap costs.
    pub trap_cycles: u64,
    /// Retired instruction count.
    pub instructions: u64,
    /// Retired indirect transfers (indirect jumps/calls and returns).
    pub indirect_transfers: u64,
}

impl ModelStats {
    /// Total cycles across all components.
    pub fn total(&self) -> u64 {
        self.base_cycles
            + self.icache_stall_cycles
            + self.dcache_stall_cycles
            + self.branch_stall_cycles
            + self.flags_cycles
            + self.trap_cycles
    }
}

/// A full microarchitecture cost model: per-class costs plus cache and
/// branch-predictor simulation, parameterized by an [`ArchProfile`].
///
/// Use it directly as an [`ExecutionObserver`] for whole-run costing, or
/// call [`ArchModel::cost_of`] per event when the embedder needs to
/// attribute cycles (the SDT buckets them by instruction origin).
#[derive(Debug)]
pub struct ArchModel {
    profile: ArchProfile,
    /// `(base_cycles, flags_tax)` per [`InstrClass`], indexed by
    /// [`InstrClass::index`] — one load on the retire fast path instead of
    /// a per-event match over profile fields.
    class_costs: [(u64, u64); InstrClass::COUNT],
    icache: CacheSim,
    dcache: CacheSim,
    cond: CondPredictor,
    /// Indirect-target predictor — the active [`PredictorSpec`] model.
    /// [`PredictorSpec::Legacy`] (the default) is the profile's own
    /// direct-mapped BTB, keeping historical charge streams bit-identical.
    target: Box<dyn TargetPredictor>,
    ras: Ras,
    stats: ModelStats,
}

/// Base cost and flags tax for one class under `p` — the single source of
/// truth the precomputed table is built from.
fn class_cost(p: &ArchProfile, class: InstrClass) -> (u64, u64) {
    match class {
        InstrClass::Alu => (p.alu_cost, 0),
        InstrClass::Mul => (p.mul_cost, 0),
        InstrClass::Div => (p.div_cost, 0),
        InstrClass::Load => (p.load_cost, 0),
        InstrClass::Store => (p.store_cost, 0),
        InstrClass::FlagsSave => (p.store_cost, p.flags_save_cost),
        InstrClass::FlagsRestore => (p.load_cost, p.flags_restore_cost),
        InstrClass::CondBranch
        | InstrClass::DirectJump
        | InstrClass::DirectCall
        | InstrClass::IndirectJump
        | InstrClass::IndirectCall
        | InstrClass::Return => (p.branch_cost, 0),
        InstrClass::Trap => (p.other_cost, 0),
        InstrClass::Other => (p.other_cost, 0),
    }
}

impl ArchModel {
    /// Creates a cold model for the given profile, using the process-wide
    /// predictor selection ([`crate::predictor`]; [`PredictorSpec::Legacy`]
    /// unless `--predictor`/`STRATA_PREDICTOR` chose otherwise).
    pub fn new(profile: ArchProfile) -> ArchModel {
        ArchModel::with_predictor_spec(profile, crate::predictor())
    }

    /// Creates a cold model charging indirect transfers with the given
    /// predictor spec, ignoring the process-wide selection — how fig22
    /// sweeps every model in one process.
    pub fn with_predictor_spec(profile: ArchProfile, spec: PredictorSpec) -> ArchModel {
        let mut class_costs = [(0, 0); InstrClass::COUNT];
        for class in InstrClass::ALL {
            class_costs[class.index()] = class_cost(&profile, class);
        }
        ArchModel {
            class_costs,
            icache: CacheSim::new(profile.icache),
            dcache: CacheSim::new(profile.dcache),
            cond: CondPredictor::with_history(
                profile.cond_predictor_bits,
                profile.cond_history_bits,
            ),
            target: spec.build(&profile),
            ras: Ras::new(profile.ras_depth),
            stats: ModelStats::default(),
            profile,
        }
    }

    /// The active indirect-target predictor's model name.
    pub fn predictor_name(&self) -> &'static str {
        self.target.name()
    }

    /// The profile this model was built from.
    pub fn profile(&self) -> &ArchProfile {
        &self.profile
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ModelStats {
        &self.stats
    }

    /// Total cycles charged so far.
    pub fn total_cycles(&self) -> u64 {
        self.stats.total()
    }

    /// The instruction-cache simulator (for miss-rate reporting).
    pub fn icache(&self) -> &CacheSim {
        &self.icache
    }

    /// The data-cache simulator.
    pub fn dcache(&self) -> &CacheSim {
        &self.dcache
    }

    /// Indirect-transfer mispredictions (target predictor + RAS) so far.
    pub fn indirect_mispredicts(&self) -> u64 {
        self.target.mispredicts() + self.ras.mispredicts()
    }

    /// Conditional-branch mispredictions so far.
    pub fn cond_mispredicts(&self) -> u64 {
        self.cond.mispredicts()
    }

    /// Charges one retired instruction, updating predictor/cache state, and
    /// returns the cycles it cost.
    #[inline]
    pub fn cost_of(&mut self, ev: &RetireEvent) -> u64 {
        let p = &self.profile;
        self.stats.instructions += 1;

        // Base cost by class: one indexed load from the precomputed table.
        let (base, flags_tax) = self.class_costs[ev.class.index()];
        self.stats.base_cycles += base;
        self.stats.flags_cycles += flags_tax;
        let mut cycles = base + flags_tax;

        // Instruction fetch.
        if !self.icache.access(ev.pc) {
            self.stats.icache_stall_cycles += p.icache_miss_penalty;
            cycles += p.icache_miss_penalty;
        }

        // Data access.
        if let Some(mem) = ev.mem {
            if !self.dcache.access(mem.addr) {
                self.stats.dcache_stall_cycles += p.dcache_miss_penalty;
                cycles += p.dcache_miss_penalty;
            }
        }

        // Control flow.
        let mut branch_stall = 0;
        match ev.control.kind {
            ControlKind::None => {}
            ControlKind::Conditional => {
                if !self.cond.predict_and_update(ev.pc, ev.control.taken) {
                    branch_stall += p.mispredict_penalty;
                }
                if ev.control.taken {
                    branch_stall += p.taken_branch_cost;
                }
            }
            ControlKind::Direct => branch_stall += p.taken_branch_cost,
            ControlKind::Call => {
                branch_stall += p.taken_branch_cost;
                self.ras.push(ev.pc.wrapping_add(4));
                if ev.control.indirect {
                    self.stats.indirect_transfers += 1;
                    if !self.target.predict_and_update(ev.pc, ev.control.target) {
                        branch_stall += p.mispredict_penalty;
                    }
                }
            }
            ControlKind::Indirect => {
                self.stats.indirect_transfers += 1;
                branch_stall += p.taken_branch_cost;
                if !self.target.predict_and_update(ev.pc, ev.control.target) {
                    branch_stall += p.mispredict_penalty;
                }
            }
            ControlKind::Return => {
                self.stats.indirect_transfers += 1;
                branch_stall += p.taken_branch_cost;
                if !self.ras.pop_and_check(ev.control.target) {
                    branch_stall += p.mispredict_penalty;
                }
            }
        }
        self.stats.branch_stall_cycles += branch_stall;
        cycles += branch_stall;

        // Trap crossing.
        if ev.class == InstrClass::Trap {
            self.stats.trap_cycles += p.trap_cost;
            cycles += p.trap_cost;
        }

        cycles
    }

    /// Charges host-side translator work: `instrs` newly translated
    /// instructions plus one fragment-map lookup. Returns the cycles
    /// charged (accounted under trap cycles, since they occur inside the
    /// runtime crossing).
    pub fn charge_translator(&mut self, instrs: u64, lookups: u64) -> u64 {
        let cycles = instrs * self.profile.translation_cost_per_instr
            + lookups * self.profile.translator_lookup_cost;
        self.stats.trap_cycles += cycles;
        cycles
    }
}

impl ExecutionObserver for ArchModel {
    #[inline]
    fn on_retire(&mut self, event: &RetireEvent) {
        self.cost_of(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strata_asm::assemble;
    use strata_machine::{layout, Machine, StepOutcome};

    fn run_costed(src: &str, profile: ArchProfile) -> (Machine, ArchModel) {
        let code = assemble(layout::APP_BASE, src).expect("assembles");
        let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
        m.write_code(layout::APP_BASE, &code).unwrap();
        m.cpu_mut().pc = layout::APP_BASE;
        let mut model = ArchModel::new(profile);
        loop {
            match m.run(&mut model, 1_000_000).unwrap() {
                StepOutcome::Trap(_) => continue,
                StepOutcome::Halted => break,
                StepOutcome::Running => unreachable!(),
            }
        }
        (m, model)
    }

    #[test]
    fn straightline_costs_accumulate() {
        let (_, model) = run_costed(
            "li r1, 1\nli r2, 2\nadd r3, r1, r2\nhalt\n",
            ArchProfile::x86_like(),
        );
        let s = model.stats();
        assert_eq!(s.instructions, 6); // li = 2 instrs each
        assert!(s.base_cycles >= 6);
        // One cold I-cache line covers all 6 instructions (32B line = 8 instrs).
        assert_eq!(model.icache().misses(), 1);
    }

    #[test]
    fn flags_tax_differs_by_profile() {
        let src = "pushf\npopf\nhalt\n";
        let (_, x86) = run_costed(src, ArchProfile::x86_like());
        let (_, sparc) = run_costed(src, ArchProfile::sparc_like());
        assert!(x86.stats().flags_cycles > sparc.stats().flags_cycles);
    }

    #[test]
    fn trap_cost_charged() {
        let (_, model) = run_costed("trap 0x1\nhalt\n", ArchProfile::x86_like());
        assert_eq!(model.stats().trap_cycles, ArchProfile::x86_like().trap_cost);
    }

    #[test]
    fn btb_predicts_monomorphic_indirect() {
        // A loop whose jr always targets the same block: after warmup the
        // x86-like BTB should predict it, the sparc-like (no BTB) never.
        let src = r"
            li r1, 16
            li r9, body
        top:
            jr r9
        body:
            addi r1, r1, -1
            cmpi r1, 0
            bne top
            halt
        ";
        let (_, x86) = run_costed(src, ArchProfile::x86_like());
        let (_, sparc) = run_costed(src, ArchProfile::sparc_like());
        assert!(x86.indirect_mispredicts() <= 2, "x86 BTB warms up");
        assert_eq!(
            sparc.indirect_mispredicts(),
            16,
            "no BTB: every jr mispredicts"
        );
    }

    #[test]
    fn ras_predicts_balanced_call_ret() {
        let src = r"
            li r1, 0
            call f
            call f
            call f
            halt
        f:
            addi r1, r1, 1
            ret
        ";
        let (_, model) = run_costed(src, ArchProfile::x86_like());
        // First return may miss nothing: calls push, rets pop — all hit.
        assert_eq!(model.ras_mispredicts_for_test(), 0);
    }

    impl ArchModel {
        fn ras_mispredicts_for_test(&self) -> u64 {
            self.ras.mispredicts()
        }
    }

    #[test]
    fn dcache_pressure_counts() {
        // Stride through 64 KiB of data — guaranteed D-cache misses.
        let src = r"
            li r1, 0x300000   ; APP_DATA_BASE
            li r2, 2048
        loop:
            lw r3, 0(r1)
            addi r1, r1, 32
            addi r2, r2, -1
            cmpi r2, 0
            bne loop
            halt
        ";
        let (_, model) = run_costed(src, ArchProfile::mips_like());
        assert!(
            model.dcache().misses() >= 1024,
            "{}",
            model.dcache().misses()
        );
    }

    #[test]
    fn class_cost_table_matches_direct_costing() {
        // The precomputed table must agree with class_cost for every class
        // under every built-in profile (including the ideal control).
        let mut profiles = ArchProfile::all();
        profiles.push(ArchProfile::ideal());
        for profile in profiles {
            let model = ArchModel::new(profile.clone());
            for class in strata_isa::InstrClass::ALL {
                assert_eq!(
                    model.class_costs[class.index()],
                    class_cost(&profile, class),
                    "{}/{class:?}",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn predictor_spec_moves_charged_cycles() {
        // The same retire stream under better indirect prediction must
        // cost fewer cycles; the legacy spec must match the default path.
        let src = r"
            li r1, 64
            li r9, body
        top:
            jr r9
        body:
            addi r1, r1, -1
            cmpi r1, 0
            bne top
            halt
        ";
        let run_spec = |spec: PredictorSpec| {
            let code = assemble(layout::APP_BASE, src).unwrap();
            let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
            m.write_code(layout::APP_BASE, &code).unwrap();
            m.cpu_mut().pc = layout::APP_BASE;
            let mut model = ArchModel::with_predictor_spec(ArchProfile::x86_like(), spec);
            loop {
                match m.run(&mut model, 1_000_000).unwrap() {
                    StepOutcome::Trap(_) => continue,
                    StepOutcome::Halted => break,
                    StepOutcome::Running => unreachable!(),
                }
            }
            (model.total_cycles(), model.indirect_mispredicts())
        };
        let (ideal_cycles, ideal_miss) = run_spec(PredictorSpec::Ideal);
        let (none_cycles, none_miss) = run_spec(PredictorSpec::None);
        let (legacy_cycles, _) = run_spec(PredictorSpec::Legacy);
        let (default_cycles, _) = {
            let code = assemble(layout::APP_BASE, src).unwrap();
            let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
            m.write_code(layout::APP_BASE, &code).unwrap();
            m.cpu_mut().pc = layout::APP_BASE;
            let mut model = ArchModel::new(ArchProfile::x86_like());
            loop {
                match m.run(&mut model, 1_000_000).unwrap() {
                    StepOutcome::Trap(_) => continue,
                    StepOutcome::Halted => break,
                    StepOutcome::Running => unreachable!(),
                }
            }
            (model.total_cycles(), model.indirect_mispredicts())
        };
        assert_eq!(ideal_miss, 0);
        assert_eq!(none_miss, 64, "64 jr retires, none predicted");
        assert!(ideal_cycles < none_cycles);
        assert_eq!(
            legacy_cycles, default_cycles,
            "ArchModel::new defaults to the legacy spec"
        );
    }

    #[test]
    fn translator_charge_accumulates() {
        let mut model = ArchModel::new(ArchProfile::x86_like());
        let c = model.charge_translator(10, 1);
        assert_eq!(c, 10 * 40 + 80);
        assert_eq!(model.stats().trap_cycles, c);
    }
}
