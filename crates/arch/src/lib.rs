//! # strata-arch — microarchitecture cost models
//!
//! Hiser et al.'s central cross-architecture finding is that the best
//! indirect-branch handling mechanism *depends on the underlying
//! implementation*: the cost of an indirect-branch misprediction, of saving
//! the flags register, of a trap into the runtime, and of instruction-cache
//! pressure all differ between the x86 and SPARC machines they measured.
//!
//! This crate models exactly those quantities. An [`ArchModel`] consumes the
//! per-retired-instruction [`RetireEvent`]s produced by `strata-machine` and
//! charges cycles from:
//!
//! * a per-[`InstrClass`](strata_isa::InstrClass) base cost table,
//! * set-associative L1 instruction and data cache simulators ([`CacheSim`]),
//! * a gshare conditional-branch predictor ([`CondPredictor`]),
//! * a pluggable indirect-target predictor ([`TargetPredictor`]): the
//!   profile's direct-mapped [`Btb`] by default — profiles may have none,
//!   modeling era SPARC/MIPS parts with no indirect predictor — or, via
//!   [`PredictorSpec`] (`--predictor`), [`NoPredict`], a set-associative
//!   LRU BTB ([`SetAssocBtb`]), an ITTAGE-class tagged-geometric target
//!   predictor ([`Ittage`]), or an [`IdealOracle`],
//! * a return-address stack ([`Ras`]),
//! * per-event costs for flags save/restore and traps.
//!
//! Three ready-made profiles bracket the design space:
//! [`ArchProfile::x86_like`], [`ArchProfile::sparc_like`], and
//! [`ArchProfile::mips_like`].
//!
//! ## Example
//!
//! ```
//! use strata_arch::{ArchModel, ArchProfile};
//! use strata_machine::{layout, Machine, StepOutcome};
//! use strata_asm::assemble;
//!
//! let code = assemble(layout::APP_BASE, "li r1, 100\nhalt\n")?;
//! let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
//! m.write_code(layout::APP_BASE, &code)?;
//! m.cpu_mut().pc = layout::APP_BASE;
//! let mut model = ArchModel::new(ArchProfile::x86_like());
//! assert_eq!(m.run(&mut model, 100)?, StepOutcome::Halted);
//! assert!(model.total_cycles() >= 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cache;
mod model;
mod predictor;
mod profile;
mod target;

pub use cache::{CacheConfig, CacheSim};
pub use model::{ArchModel, ModelStats};
pub use predictor::{Btb, CondPredictor, Ras};
pub use profile::ArchProfile;
pub use target::{
    predictor, set_predictor, IdealOracle, Ittage, NoPredict, PredictorParseError, PredictorSpec,
    SetAssocBtb, TargetPredictor,
};

pub use strata_machine::RetireEvent;
