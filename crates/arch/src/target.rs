//! Pluggable indirect-branch target prediction.
//!
//! The paper's mechanism rankings were measured on machines whose indirect
//! predictors ranged from nonexistent (UltraSPARC) to a simple
//! direct-mapped BTB (Pentium-era x86). Modern cores span a much wider
//! space — set-associative BTBs with true LRU and ITTAGE-class
//! tagged-geometric target predictors — and how well the *hardware*
//! predicts the translated dispatch sequence's final `jmem`/`jr` decides
//! how much a software mechanism's extra instructions actually cost.
//!
//! [`TargetPredictor`] abstracts the model: [`ArchModel`](crate::ArchModel)
//! charges `mispredict_penalty` whenever the active predictor misses on an
//! indirect transfer. The zoo:
//!
//! * [`NoPredict`] — every indirect transfer mispredicts (era SPARC/MIPS).
//! * [`Btb`](crate::Btb) — the legacy direct-mapped BTB (the default:
//!   [`PredictorSpec::Legacy`] builds it from the profile's `btb_entries`,
//!   so existing configurations stay byte-identical).
//! * [`SetAssocBtb`] — set-associative geometry with true-LRU replacement,
//!   the organization BTB reverse-engineering work documents on Arm cores.
//! * [`Ittage`] — an ITTAGE-class tagged-geometric target predictor:
//!   a tagless base table plus tagged tables indexed by folded global
//!   target history of geometrically increasing lengths.
//! * [`IdealOracle`] — always correct; bounds prediction-limited speedup.
//!
//! The active model is selected process-wide by [`set_predictor`] (the CLI
//! `--predictor` flag) or the `STRATA_PREDICTOR` environment variable
//! (fleet workers), mirroring the `--tier`/`--sampled` pattern; embedders
//! that sweep predictors per run use
//! [`ArchModel::with_predictor_spec`](crate::ArchModel::with_predictor_spec)
//! instead of the global.

use std::sync::OnceLock;

use crate::{ArchProfile, Btb};

/// An indirect-branch target predictor: one `predict → train` step per
/// retired indirect transfer, with cumulative hit/miss counters.
///
/// Object-safe so [`ArchModel`](crate::ArchModel) can hold any model
/// behind one box on the retire fast path.
pub trait TargetPredictor: std::fmt::Debug + Send {
    /// Predicts the target of the indirect transfer at `pc`, then trains
    /// on the actual `target`. Returns whether the prediction was correct.
    fn predict_and_update(&mut self, pc: u32, target: u32) -> bool;

    /// Mispredictions so far.
    fn mispredicts(&self) -> u64;

    /// Correct predictions so far.
    fn correct(&self) -> u64;

    /// Short model name for reports.
    fn name(&self) -> &'static str;
}

impl TargetPredictor for Btb {
    fn predict_and_update(&mut self, pc: u32, target: u32) -> bool {
        Btb::predict_and_update(self, pc, target)
    }

    fn mispredicts(&self) -> u64 {
        Btb::mispredicts(self)
    }

    fn correct(&self) -> u64 {
        Btb::correct(self)
    }

    fn name(&self) -> &'static str {
        "btb"
    }
}

/// No indirect-branch prediction: every transfer pays the full mispredict
/// penalty, as on the era SPARC and MIPS parts the paper measured.
#[derive(Debug, Default)]
pub struct NoPredict {
    misses: u64,
}

impl TargetPredictor for NoPredict {
    fn predict_and_update(&mut self, _pc: u32, _target: u32) -> bool {
        self.misses += 1;
        false
    }

    fn mispredicts(&self) -> u64 {
        self.misses
    }

    fn correct(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// A perfect oracle: every indirect transfer predicts correctly. Renders
/// the cost a mechanism would have on a machine whose predictor never
/// stalls it — the bound the ITTAGE-class models approach.
#[derive(Debug, Default)]
pub struct IdealOracle {
    hits: u64,
}

impl TargetPredictor for IdealOracle {
    fn predict_and_update(&mut self, _pc: u32, _target: u32) -> bool {
        self.hits += 1;
        true
    }

    fn mispredicts(&self) -> u64 {
        0
    }

    fn correct(&self) -> u64 {
        self.hits
    }

    fn name(&self) -> &'static str {
        "ideal"
    }
}

/// One set-associative BTB entry.
#[derive(Debug, Clone, Copy)]
struct SaEntry {
    /// Full `pc` tag; `u32::MAX` marks an invalid way (no aligned
    /// instruction address can equal it).
    pc: u32,
    target: u32,
    /// LRU stamp: monotone per-access counter, smallest = oldest.
    stamp: u64,
}

/// A set-associative branch target buffer with true-LRU replacement — the
/// organization documented by BTB reverse-engineering on Arm cores, where
/// associativity (not raw capacity) decides how many concurrently-hot
/// indirect sites survive without conflict evictions.
#[derive(Debug)]
pub struct SetAssocBtb {
    /// `sets * ways` entries, way-major within each set.
    entries: Vec<SaEntry>,
    set_mask: usize,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocBtb {
    /// Creates a `sets × ways` BTB.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is not in `1..=16`.
    pub fn new(sets: u32, ways: u32) -> SetAssocBtb {
        assert!(
            sets.is_power_of_two(),
            "set-associative BTB sets must be a power of two"
        );
        assert!((1..=16).contains(&ways), "BTB ways must be in 1..=16");
        SetAssocBtb {
            entries: vec![
                SaEntry {
                    pc: u32::MAX,
                    target: 0,
                    stamp: 0,
                };
                (sets * ways) as usize
            ],
            set_mask: (sets - 1) as usize,
            ways: ways as usize,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }
}

impl TargetPredictor for SetAssocBtb {
    fn predict_and_update(&mut self, pc: u32, target: u32) -> bool {
        self.tick += 1;
        let set = ((pc >> 2) as usize) & self.set_mask;
        let base = set * self.ways;
        let ways = &mut self.entries[base..base + self.ways];
        if let Some(e) = ways.iter_mut().find(|e| e.pc == pc) {
            let correct = e.target == target;
            e.target = target;
            e.stamp = self.tick;
            if correct {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
            return correct;
        }
        // Miss: evict the least recently used way (lowest index on ties,
        // which also consumes invalid ways first — their stamp is 0).
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(i, e)| (e.stamp, *i))
            .map(|(i, _)| i)
            .expect("ways >= 1");
        ways[victim] = SaEntry {
            pc,
            target,
            stamp: self.tick,
        };
        self.misses += 1;
        false
    }

    fn mispredicts(&self) -> u64 {
        self.misses
    }

    fn correct(&self) -> u64 {
        self.hits
    }

    fn name(&self) -> &'static str {
        "sa-btb"
    }
}

/// One ITTAGE tagged-table entry.
#[derive(Debug, Clone, Copy)]
struct TaggedEntry {
    valid: bool,
    tag: u32,
    target: u32,
    /// Saturating confidence (0..=3): replacement target on 0.
    conf: u8,
    /// Saturating usefulness (0..=3): allocation victim on 0.
    useful: u8,
}

const TAGGED_EMPTY: TaggedEntry = TaggedEntry {
    valid: false,
    tag: 0,
    target: 0,
    conf: 0,
    useful: 0,
};

/// One tagged component with its geometric history length.
#[derive(Debug)]
struct TaggedTable {
    hist_len: u32,
    entries: Vec<TaggedEntry>,
    index_bits: u32,
}

impl TaggedTable {
    fn index(&self, pc: u32, ghr: u64) -> usize {
        let folded = fold(ghr, self.hist_len, self.index_bits);
        (((pc >> 2) ^ folded) & ((1 << self.index_bits) - 1)) as usize
    }

    fn tag(&self, pc: u32, ghr: u64) -> u32 {
        // A different fold width decorrelates the tag from the index.
        let folded = fold(ghr, self.hist_len, ITTAGE_TAG_BITS);
        ((pc >> 2) ^ (pc >> 9) ^ folded.rotate_left(3)) & ((1 << ITTAGE_TAG_BITS) - 1)
    }
}

/// Folds the low `len` bits of `h` into `bits`-wide chunks by XOR.
fn fold(h: u64, len: u32, bits: u32) -> u32 {
    let mut h = if len >= 64 {
        h
    } else {
        h & ((1u64 << len) - 1)
    };
    let mut f = 0u64;
    let chunk = (1u64 << bits) - 1;
    while h != 0 {
        f ^= h & chunk;
        h >>= bits;
    }
    f as u32
}

const ITTAGE_TAG_BITS: u32 = 9;
const ITTAGE_BASE_BITS: u32 = 9;
const ITTAGE_TABLE_BITS: u32 = 8;

/// An ITTAGE-class indirect target predictor: a tagless direct-mapped base
/// table plus `tables` tagged components indexed by folded global target
/// history of geometrically increasing lengths (4, 8, 16, …). The
/// longest-history tag match provides the prediction; mispredictions
/// allocate into a longer-history component whose victim entry has gone
/// un-useful. Correlated target sequences a BTB can never capture (a site
/// alternating between callees in a repeating pattern) train in a few
/// hundred transfers.
#[derive(Debug)]
pub struct Ittage {
    /// Direct-mapped `(pc, target)` base pairs (`pc == u32::MAX` invalid).
    base: Vec<(u32, u32)>,
    tables: Vec<TaggedTable>,
    /// Global target-path history: two target bits shifted in per transfer.
    ghr: u64,
    hits: u64,
    misses: u64,
}

impl Ittage {
    /// Creates a predictor with `tables` tagged components (`1..=8`).
    ///
    /// # Panics
    ///
    /// Panics if `tables` is not in `1..=8`.
    pub fn new(tables: u32) -> Ittage {
        assert!((1..=8).contains(&tables), "ittage tables must be in 1..=8");
        Ittage {
            base: vec![(u32::MAX, 0); 1 << ITTAGE_BASE_BITS],
            tables: (0..tables)
                .map(|i| TaggedTable {
                    hist_len: 4 << i,
                    entries: vec![TAGGED_EMPTY; 1 << ITTAGE_TABLE_BITS],
                    index_bits: ITTAGE_TABLE_BITS,
                })
                .collect(),
            ghr: 0,
            hits: 0,
            misses: 0,
        }
    }
}

impl TargetPredictor for Ittage {
    fn predict_and_update(&mut self, pc: u32, target: u32) -> bool {
        let base_idx = ((pc >> 2) as usize) & (self.base.len() - 1);

        // Provider: the longest-history tagged component whose entry
        // matches, else the base table.
        let mut provider: Option<(usize, usize)> = None;
        for (t, table) in self.tables.iter().enumerate().rev() {
            let idx = table.index(pc, self.ghr);
            let e = &table.entries[idx];
            if e.valid && e.tag == table.tag(pc, self.ghr) {
                provider = Some((t, idx));
                break;
            }
        }
        let predicted = match provider {
            Some((t, idx)) => Some(self.tables[t].entries[idx].target),
            None => {
                let (tag, tgt) = self.base[base_idx];
                (tag == pc).then_some(tgt)
            }
        };
        let correct = predicted == Some(target);

        // Train the provider.
        match provider {
            Some((t, idx)) => {
                let e = &mut self.tables[t].entries[idx];
                if e.target == target {
                    e.conf = (e.conf + 1).min(3);
                    e.useful = (e.useful + 1).min(3);
                } else {
                    if e.conf == 0 {
                        e.target = target;
                        e.conf = 1;
                    } else {
                        e.conf -= 1;
                    }
                    e.useful = e.useful.saturating_sub(1);
                }
            }
            None => {
                self.base[base_idx] = (pc, target);
            }
        }
        // The base learns alongside a mispredicting tagged provider too,
        // so evictions fall back to the last observed target.
        if !correct {
            self.base[base_idx] = (pc, target);
        }

        // On a misprediction, allocate in one component with a longer
        // history than the provider (decaying usefulness when every
        // candidate victim is still protected).
        if !correct {
            let from = provider.map_or(0, |(t, _)| t + 1);
            let mut allocated = false;
            for t in from..self.tables.len() {
                let idx = self.tables[t].index(pc, self.ghr);
                let tag = self.tables[t].tag(pc, self.ghr);
                let e = &mut self.tables[t].entries[idx];
                if !e.valid || e.useful == 0 {
                    *e = TaggedEntry {
                        valid: true,
                        tag,
                        target,
                        conf: 1,
                        useful: 0,
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for t in from..self.tables.len() {
                    let idx = self.tables[t].index(pc, self.ghr);
                    let e = &mut self.tables[t].entries[idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // Shift two bits of the resolved target into the path history —
        // folded from the whole word, so any pair of distinct targets
        // produces distinct history symbols (aligned targets share their
        // low bits).
        self.ghr = (self.ghr << 2) | (fold((target >> 2) as u64, 32, 2) as u64);

        if correct {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        correct
    }

    fn mispredicts(&self) -> u64 {
        self.misses
    }

    fn correct(&self) -> u64 {
        self.hits
    }

    fn name(&self) -> &'static str {
        "ittage"
    }
}

/// A `--predictor` specification: which [`TargetPredictor`] the cost model
/// charges indirect transfers with.
///
/// Grammar (see [`PredictorSpec::parse`]):
///
/// ```text
/// legacy | none | ideal | btb:<entries> | btb:<sets>x<ways> | ittage[:<tables>]
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorSpec {
    /// The profile's own direct-mapped BTB (`btb_entries`) — the default;
    /// byte-identical to the pre-predictor-layer cost model.
    Legacy,
    /// No indirect prediction at all, regardless of profile.
    None,
    /// Perfect prediction, regardless of profile.
    Ideal,
    /// A direct-mapped BTB of the given size (overrides the profile).
    Btb {
        /// Entries (0 = none, else a power of two `1..=65536`).
        entries: u32,
    },
    /// A set-associative BTB with true-LRU replacement.
    SetAssoc {
        /// Sets (power of two `1..=65536`).
        sets: u32,
        /// Ways (`1..=16`).
        ways: u32,
    },
    /// An ITTAGE-class tagged-geometric target predictor.
    Ittage {
        /// Tagged components (`1..=8`).
        tables: u32,
    },
}

/// A `--predictor` parse failure, with the byte span of the offending
/// token inside the original spec (for caret diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictorParseError {
    /// What was wrong.
    pub msg: String,
    /// Byte offset of the offending token.
    pub start: usize,
    /// Byte length of the offending token (at least 1).
    pub len: usize,
}

impl PredictorParseError {
    fn new(msg: impl Into<String>, start: usize, len: usize) -> PredictorParseError {
        PredictorParseError {
            msg: msg.into(),
            start,
            len: len.max(1),
        }
    }
}

impl std::fmt::Display for PredictorParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for PredictorParseError {}

fn parse_num(s: &str, what: &str, at: usize) -> Result<u32, PredictorParseError> {
    if s.is_empty() {
        return Err(PredictorParseError::new(format!("missing {what}"), at, 1));
    }
    if !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(PredictorParseError::new(
            format!("{what} must be a number, got '{s}'"),
            at,
            s.len(),
        ));
    }
    s.parse::<u32>()
        .map_err(|_| PredictorParseError::new(format!("{what} '{s}' out of range"), at, s.len()))
}

impl PredictorSpec {
    /// Parses a `--predictor` spec. Errors carry the offending token's
    /// span for caret diagnostics.
    pub fn parse(spec: &str) -> Result<PredictorSpec, PredictorParseError> {
        let (head, arg) = match spec.find(':') {
            Some(i) => (&spec[..i], Some((&spec[i + 1..], i + 1))),
            None => (spec, None),
        };
        let no_arg = |v: PredictorSpec| match arg {
            Some((a, at)) => Err(PredictorParseError::new(
                format!("'{head}' takes no argument"),
                at,
                a.len(),
            )),
            None => Ok(v),
        };
        match head {
            "legacy" => no_arg(PredictorSpec::Legacy),
            "none" => no_arg(PredictorSpec::None),
            "ideal" => no_arg(PredictorSpec::Ideal),
            "btb" => {
                let (a, at) = arg.ok_or_else(|| {
                    PredictorParseError::new(
                        "btb needs a size: btb:<entries> or btb:<sets>x<ways>",
                        spec.len(),
                        1,
                    )
                })?;
                match a.find('x') {
                    Some(i) => {
                        let sets = parse_num(&a[..i], "btb sets", at)?;
                        if !sets.is_power_of_two() || sets > 65536 {
                            return Err(PredictorParseError::new(
                                format!("btb sets {sets} must be a power of two in 1..=65536"),
                                at,
                                i,
                            ));
                        }
                        let ways = parse_num(&a[i + 1..], "btb ways", at + i + 1)?;
                        if !(1..=16).contains(&ways) {
                            return Err(PredictorParseError::new(
                                format!("btb ways {ways} must be in 1..=16"),
                                at + i + 1,
                                a.len() - i - 1,
                            ));
                        }
                        Ok(PredictorSpec::SetAssoc { sets, ways })
                    }
                    None => {
                        let entries = parse_num(a, "btb entries", at)?;
                        if entries != 0 && (!entries.is_power_of_two() || entries > 65536) {
                            return Err(PredictorParseError::new(
                                format!("btb entries {entries} must be 0 or a power of two in 1..=65536"),
                                at,
                                a.len(),
                            ));
                        }
                        Ok(PredictorSpec::Btb { entries })
                    }
                }
            }
            "ittage" => {
                let tables = match arg {
                    Some((a, at)) => {
                        let t = parse_num(a, "ittage tables", at)?;
                        if !(1..=8).contains(&t) {
                            return Err(PredictorParseError::new(
                                format!("ittage tables {t} must be in 1..=8"),
                                at,
                                a.len(),
                            ));
                        }
                        t
                    }
                    None => 4,
                };
                Ok(PredictorSpec::Ittage { tables })
            }
            other => Err(PredictorParseError::new(
                format!(
                    "unknown predictor '{other}' (expected legacy, none, ideal, btb:<n>, btb:<s>x<w>, or ittage[:<t>])"
                ),
                0,
                other.len(),
            )),
        }
    }

    /// Canonical stable label — used to salt manifest fingerprints and
    /// store keys, and as the row label in fig22.
    pub fn label(&self) -> String {
        match *self {
            PredictorSpec::Legacy => "legacy".to_string(),
            PredictorSpec::None => "none".to_string(),
            PredictorSpec::Ideal => "ideal".to_string(),
            PredictorSpec::Btb { entries } => format!("btb:{entries}"),
            PredictorSpec::SetAssoc { sets, ways } => format!("btb:{sets}x{ways}"),
            PredictorSpec::Ittage { tables } => format!("ittage:{tables}"),
        }
    }

    /// Builds the predictor this spec selects under `profile`.
    pub fn build(&self, profile: &ArchProfile) -> Box<dyn TargetPredictor> {
        match *self {
            PredictorSpec::Legacy => Box::new(Btb::new(profile.btb_entries)),
            PredictorSpec::None => Box::new(NoPredict::default()),
            PredictorSpec::Ideal => Box::new(IdealOracle::default()),
            PredictorSpec::Btb { entries } => Box::new(Btb::new(entries)),
            PredictorSpec::SetAssoc { sets, ways } => Box::new(SetAssocBtb::new(sets, ways)),
            PredictorSpec::Ittage { tables } => Box::new(Ittage::new(tables)),
        }
    }
}

static PREDICTOR: OnceLock<PredictorSpec> = OnceLock::new();

/// Selects the process-wide predictor model. First caller wins (matching
/// `--tier`/`--sampled` semantics); call before any [`ArchModel`]
/// construction. The CLI forwards `--predictor` here.
///
/// [`ArchModel`]: crate::ArchModel
pub fn set_predictor(spec: PredictorSpec) {
    let _ = PREDICTOR.set(spec);
}

/// The process-wide predictor spec: whatever [`set_predictor`] installed,
/// else the `STRATA_PREDICTOR` environment variable (how fleet workers
/// inherit the coordinator's mode), else [`PredictorSpec::Legacy`].
///
/// # Panics
///
/// Panics if `STRATA_PREDICTOR` is set but unparsable.
pub fn predictor() -> PredictorSpec {
    *PREDICTOR.get_or_init(|| match std::env::var("STRATA_PREDICTOR") {
        Ok(s) => PredictorSpec::parse(&s)
            .unwrap_or_else(|e| panic!("bad STRATA_PREDICTOR value '{s}': {e}")),
        Err(_) => PredictorSpec::Legacy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — deterministic stream for property tests.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// A synthetic indirect-branch trace: `sites` branch pcs, each with a
    /// target set whose element is chosen by a per-site repeating pattern.
    fn synthetic_trace(seed: u64, len: usize) -> Vec<(u32, u32)> {
        let mut rng = Rng(seed);
        let sites: Vec<(u32, Vec<u32>, usize)> = (0..8)
            .map(|i| {
                let pc = 0x1000 + i * 0x40;
                let arity = 1 + (rng.next() % 4) as usize;
                let targets: Vec<u32> = (0..arity)
                    .map(|t| 0x20000 + (t as u32) * 0x100 + i)
                    .collect();
                let period = 1 + (rng.next() % 6) as usize;
                (pc, targets, period)
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for step in 0..len {
            let (pc, targets, period) = &sites[(rng.next() % sites.len() as u64) as usize];
            out.push((*pc, targets[(step / period) % targets.len()]));
        }
        out
    }

    fn drive(p: &mut dyn TargetPredictor, trace: &[(u32, u32)]) -> (u64, u64) {
        for &(pc, target) in trace {
            p.predict_and_update(pc, target);
        }
        (p.correct(), p.mispredicts())
    }

    #[test]
    fn zoo_is_deterministic_on_seeded_traces() {
        // Same trace → same counters, for every model in the zoo.
        for seed in [1u64, 7, 42] {
            let trace = synthetic_trace(seed, 4000);
            let specs = [
                PredictorSpec::None,
                PredictorSpec::Ideal,
                PredictorSpec::Btb { entries: 64 },
                PredictorSpec::SetAssoc { sets: 16, ways: 4 },
                PredictorSpec::Ittage { tables: 4 },
            ];
            for spec in specs {
                let profile = ArchProfile::x86_like();
                let a = drive(spec.build(&profile).as_mut(), &trace);
                let b = drive(spec.build(&profile).as_mut(), &trace);
                assert_eq!(a, b, "{} not deterministic (seed {seed})", spec.label());
                assert_eq!(a.0 + a.1, trace.len() as u64);
            }
        }
    }

    #[test]
    fn no_predict_and_oracle_bound_the_zoo() {
        let trace = synthetic_trace(3, 2000);
        let profile = ArchProfile::x86_like();
        let (none_hits, none_misses) = drive(PredictorSpec::None.build(&profile).as_mut(), &trace);
        let (ideal_hits, ideal_misses) =
            drive(PredictorSpec::Ideal.build(&profile).as_mut(), &trace);
        assert_eq!((none_hits, none_misses), (0, trace.len() as u64));
        assert_eq!((ideal_hits, ideal_misses), (trace.len() as u64, 0));
        for spec in [
            PredictorSpec::Btb { entries: 64 },
            PredictorSpec::SetAssoc { sets: 16, ways: 4 },
            PredictorSpec::Ittage { tables: 4 },
        ] {
            let (hits, misses) = drive(spec.build(&profile).as_mut(), &trace);
            assert!(
                hits <= ideal_hits && misses <= none_misses,
                "{}",
                spec.label()
            );
        }
    }

    #[test]
    fn set_assoc_survives_conflicting_sites_where_direct_mapped_thrashes() {
        // Four monomorphic sites mapping to the same set: a 4-way BTB keeps
        // all of them; a direct-mapped table of the same capacity evicts on
        // every access (all four collide in one entry modulo 4... use 4
        // sets so pcs 0x1000,0x1010,... stride to the same set index).
        let sets = 4u32;
        let pcs: Vec<u32> = (0..4).map(|i| 0x1000 + i * (sets * 4)).collect();
        let mut sa = SetAssocBtb::new(sets, 4);
        let mut dm = Btb::new(sets * 4); // same capacity, direct mapped
        for _ in 0..64 {
            for &pc in &pcs {
                TargetPredictor::predict_and_update(&mut sa, pc, pc + 0x100);
                dm.predict_and_update(pc, pc + 0x100);
            }
        }
        // After the 4 cold misses the set-associative table never misses.
        assert_eq!(TargetPredictor::mispredicts(&sa), 4);
        // The direct-mapped table of equal capacity conflicts: pcs stride
        // by sets*4 bytes = 4 entries apart in a 16-entry table, so they
        // coexist there — widen the stride to force aliasing instead.
        let alias_pcs: Vec<u32> = (0..4).map(|i| 0x1000 + i * (sets * 4 * 16)).collect();
        let mut dm2 = Btb::new(sets * 4);
        let mut sa2 = SetAssocBtb::new(sets, 4);
        for _ in 0..64 {
            for &pc in &alias_pcs {
                dm2.predict_and_update(pc, pc + 0x100);
                TargetPredictor::predict_and_update(&mut sa2, pc, pc + 0x100);
            }
        }
        assert_eq!(
            TargetPredictor::mispredicts(&sa2),
            4,
            "4 ways hold 4 aliases"
        );
        assert!(
            dm2.mispredicts() > 200,
            "direct-mapped aliases thrash: {}",
            dm2.mispredicts()
        );
    }

    #[test]
    fn ittage_converges_on_patterned_site_btb_cannot() {
        // One site alternating A,B,A,B…: the last-target BTB mispredicts
        // every transfer after warmup; ITTAGE's history components lock on.
        let pc = 0x2000;
        let targets = [0x30000u32, 0x30400];
        let mut btb = Btb::new(512);
        let mut it = Ittage::new(4);
        for i in 0..1000 {
            let t = targets[i % 2];
            btb.predict_and_update(pc, t);
            TargetPredictor::predict_and_update(&mut it, pc, t);
        }
        let btb_before = btb.mispredicts();
        let it_before = TargetPredictor::mispredicts(&it);
        for i in 1000..1200 {
            let t = targets[i % 2];
            btb.predict_and_update(pc, t);
            TargetPredictor::predict_and_update(&mut it, pc, t);
        }
        assert_eq!(btb.mispredicts() - btb_before, 200, "BTB never adapts");
        assert_eq!(
            TargetPredictor::mispredicts(&it) - it_before,
            0,
            "ITTAGE fully converged"
        );
    }

    #[test]
    fn ittage_trains_monomorphic_site_quickly() {
        let mut it = Ittage::new(4);
        for _ in 0..8 {
            TargetPredictor::predict_and_update(&mut it, 0x4000, 0x50000);
        }
        let before = TargetPredictor::mispredicts(&it);
        for _ in 0..100 {
            TargetPredictor::predict_and_update(&mut it, 0x4000, 0x50000);
        }
        assert_eq!(TargetPredictor::mispredicts(&it), before);
    }

    #[test]
    fn spec_parses_and_labels_round_trip() {
        let cases = [
            ("legacy", PredictorSpec::Legacy),
            ("none", PredictorSpec::None),
            ("ideal", PredictorSpec::Ideal),
            ("btb:1024", PredictorSpec::Btb { entries: 1024 }),
            ("btb:0", PredictorSpec::Btb { entries: 0 }),
            ("btb:256x4", PredictorSpec::SetAssoc { sets: 256, ways: 4 }),
            ("ittage:6", PredictorSpec::Ittage { tables: 6 }),
        ];
        for (s, spec) in cases {
            assert_eq!(PredictorSpec::parse(s).unwrap(), spec, "{s}");
            assert_eq!(spec.label(), s, "label round-trips");
        }
        assert_eq!(
            PredictorSpec::parse("ittage").unwrap(),
            PredictorSpec::Ittage { tables: 4 },
            "default table count"
        );
    }

    #[test]
    fn spec_errors_carry_spans() {
        let err = PredictorSpec::parse("btb:12x4").unwrap_err();
        assert!(err.msg.contains("power of two"), "{}", err.msg);
        assert_eq!((err.start, err.len), (4, 2));

        let err = PredictorSpec::parse("btb:256xtwo").unwrap_err();
        assert!(err.msg.contains("must be a number"), "{}", err.msg);
        assert_eq!((err.start, err.len), (8, 3));

        let err = PredictorSpec::parse("tage").unwrap_err();
        assert!(err.msg.contains("unknown predictor"), "{}", err.msg);
        assert_eq!((err.start, err.len), (0, 4));

        let err = PredictorSpec::parse("ideal:3").unwrap_err();
        assert!(err.msg.contains("takes no argument"), "{}", err.msg);
        assert_eq!((err.start, err.len), (6, 1));

        let err = PredictorSpec::parse("ittage:9").unwrap_err();
        assert!(err.msg.contains("1..=8"), "{}", err.msg);
        assert_eq!((err.start, err.len), (7, 1));
    }

    #[test]
    fn legacy_spec_builds_profile_btb() {
        let profile = ArchProfile::sparc_like();
        let mut p = PredictorSpec::Legacy.build(&profile);
        // sparc has no BTB: every transfer misses, exactly like Btb::new(0).
        assert!(!p.predict_and_update(0x100, 0x200));
        assert!(!p.predict_and_update(0x100, 0x200));
        assert_eq!(p.correct(), 0);
        assert_eq!(p.name(), "btb");
    }
}
