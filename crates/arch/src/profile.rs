use crate::CacheConfig;

/// All the knobs that make one simulated microarchitecture different from
/// another.
///
/// The three constructors model the space the paper measured across: a
/// deeply pipelined x86 with good predictors but expensive flags handling
/// and traps, an UltraSPARC-style machine with no indirect-branch predictor
/// and very expensive traps (register-window flushes), and a simpler
/// MIPS-style core with small caches. The *relative* costs are what produce
/// the paper's mechanism-ranking flips; absolute cycle counts are nominal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchProfile {
    /// Human-readable profile name.
    pub name: &'static str,

    /// Base cost of simple ALU operations.
    pub alu_cost: u64,
    /// Base cost of integer multiply.
    pub mul_cost: u64,
    /// Base cost of integer divide/remainder.
    pub div_cost: u64,
    /// Base cost of a load (on L1 hit).
    pub load_cost: u64,
    /// Base cost of a store (on L1 hit).
    pub store_cost: u64,
    /// Base cost of `nop`/`halt`.
    pub other_cost: u64,
    /// Base cost of any control transfer instruction (before prediction
    /// penalties).
    pub branch_cost: u64,

    /// Cost of `pushf` beyond its store (the x86 `pushf` tax).
    pub flags_save_cost: u64,
    /// Cost of `popf` beyond its load.
    pub flags_restore_cost: u64,

    /// Extra bubble cycles on any taken control transfer.
    pub taken_branch_cost: u64,
    /// Penalty for a mispredicted branch (conditional, indirect, or
    /// return).
    pub mispredict_penalty: u64,
    /// Cost of a `trap` (crossing into the SDT runtime / kernel).
    pub trap_cost: u64,

    /// L1 instruction cache geometry.
    pub icache: CacheConfig,
    /// L1 data cache geometry.
    pub dcache: CacheConfig,
    /// Cycles per I-cache miss.
    pub icache_miss_penalty: u64,
    /// Cycles per D-cache miss.
    pub dcache_miss_penalty: u64,

    /// Branch-target-buffer entries for indirect transfers (0 = none).
    pub btb_entries: u32,
    /// Return-address-stack depth (0 = none).
    pub ras_depth: usize,
    /// log2 of the gshare conditional predictor table size.
    pub cond_predictor_bits: u32,
    /// Global-history length (bits) of the conditional predictor. The
    /// built-in profiles keep it equal to `cond_predictor_bits` — the
    /// historical coupling — so charged cycles are unchanged; custom
    /// profiles may lengthen or zero it independently.
    pub cond_history_bits: u32,

    /// Host-side translator cost charged per newly translated instruction.
    pub translation_cost_per_instr: u64,
    /// Host-side translator cost charged per fragment-map lookup when the
    /// translator is re-entered.
    pub translator_lookup_cost: u64,
}

impl ArchProfile {
    /// A deeply pipelined x86-style machine (Pentium 4 era): large
    /// mispredict penalty, a real BTB and RAS, expensive `pushf`/`popf`,
    /// moderately expensive traps.
    pub fn x86_like() -> ArchProfile {
        ArchProfile {
            name: "x86-like",
            alu_cost: 1,
            mul_cost: 4,
            div_cost: 25,
            load_cost: 1,
            store_cost: 1,
            other_cost: 1,
            branch_cost: 1,
            flags_save_cost: 8,
            flags_restore_cost: 10,
            taken_branch_cost: 1,
            mispredict_penalty: 20,
            trap_cost: 300,
            icache: CacheConfig {
                sets: 128,
                ways: 4,
                line_bytes: 32,
            },
            dcache: CacheConfig {
                sets: 128,
                ways: 4,
                line_bytes: 32,
            },
            icache_miss_penalty: 24,
            dcache_miss_penalty: 24,
            btb_entries: 512,
            ras_depth: 16,
            cond_predictor_bits: 12,
            cond_history_bits: 12,
            translation_cost_per_instr: 40,
            translator_lookup_cost: 80,
        }
    }

    /// An UltraSPARC-style machine: shallow pipeline (small mispredict
    /// penalty), *no* indirect-branch predictor, cheap flags handling, and
    /// very expensive traps (register-window flush on every runtime
    /// crossing).
    pub fn sparc_like() -> ArchProfile {
        ArchProfile {
            name: "sparc-like",
            alu_cost: 1,
            mul_cost: 6,
            div_cost: 40,
            load_cost: 1,
            store_cost: 1,
            other_cost: 1,
            branch_cost: 1,
            flags_save_cost: 1,
            flags_restore_cost: 1,
            taken_branch_cost: 1,
            mispredict_penalty: 6,
            trap_cost: 700,
            icache: CacheConfig {
                sets: 256,
                ways: 2,
                line_bytes: 32,
            },
            dcache: CacheConfig {
                sets: 256,
                ways: 2,
                line_bytes: 32,
            },
            icache_miss_penalty: 20,
            dcache_miss_penalty: 20,
            btb_entries: 0,
            ras_depth: 8,
            cond_predictor_bits: 11,
            cond_history_bits: 11,
            translation_cost_per_instr: 50,
            translator_lookup_cost: 100,
        }
    }

    /// A simpler MIPS-style core: small caches with slow memory, a small
    /// BTB and RAS, cheap flags, moderate trap cost.
    pub fn mips_like() -> ArchProfile {
        ArchProfile {
            name: "mips-like",
            alu_cost: 1,
            mul_cost: 5,
            div_cost: 35,
            load_cost: 1,
            store_cost: 1,
            other_cost: 1,
            branch_cost: 1,
            flags_save_cost: 1,
            flags_restore_cost: 1,
            taken_branch_cost: 1,
            mispredict_penalty: 4,
            trap_cost: 150,
            icache: CacheConfig {
                sets: 64,
                ways: 2,
                line_bytes: 32,
            },
            dcache: CacheConfig {
                sets: 64,
                ways: 2,
                line_bytes: 32,
            },
            icache_miss_penalty: 30,
            dcache_miss_penalty: 30,
            btb_entries: 64,
            ras_depth: 4,
            cond_predictor_bits: 10,
            cond_history_bits: 10,
            translation_cost_per_instr: 45,
            translator_lookup_cost: 90,
        }
    }

    /// An idealized control machine: every instruction costs one cycle,
    /// prediction is irrelevant (zero penalties), caches never stall, and
    /// runtime crossings are free. Under this profile a run's cycle count
    /// equals its retired-instruction count, so SDT slowdowns reduce to
    /// pure instruction-count ratios — the analytic anchor the cost-model
    /// profiles are compared against.
    pub fn ideal() -> ArchProfile {
        ArchProfile {
            name: "ideal",
            alu_cost: 1,
            mul_cost: 1,
            div_cost: 1,
            load_cost: 1,
            store_cost: 1,
            other_cost: 1,
            branch_cost: 1,
            flags_save_cost: 0,
            flags_restore_cost: 0,
            taken_branch_cost: 0,
            mispredict_penalty: 0,
            trap_cost: 0,
            icache: CacheConfig {
                sets: 64,
                ways: 2,
                line_bytes: 32,
            },
            dcache: CacheConfig {
                sets: 64,
                ways: 2,
                line_bytes: 32,
            },
            icache_miss_penalty: 0,
            dcache_miss_penalty: 0,
            btb_entries: 512,
            ras_depth: 16,
            cond_predictor_bits: 10,
            cond_history_bits: 10,
            translation_cost_per_instr: 0,
            translator_lookup_cost: 0,
        }
    }

    /// The three built-in cost-model profiles, in presentation order (the
    /// [`ideal`](ArchProfile::ideal) control profile is excluded).
    pub fn all() -> Vec<ArchProfile> {
        vec![
            ArchProfile::x86_like(),
            ArchProfile::sparc_like(),
            ArchProfile::mips_like(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_where_it_matters() {
        let x86 = ArchProfile::x86_like();
        let sparc = ArchProfile::sparc_like();
        // The paper's architecture-dependence levers:
        assert!(x86.flags_save_cost > sparc.flags_save_cost);
        assert!(sparc.trap_cost > x86.trap_cost);
        assert!(x86.btb_entries > 0 && sparc.btb_entries == 0);
        assert!(x86.mispredict_penalty > sparc.mispredict_penalty);
    }

    #[test]
    fn all_returns_three() {
        assert_eq!(ArchProfile::all().len(), 3);
    }

    #[test]
    fn ideal_charges_exactly_one_cycle_per_instruction() {
        let p = ArchProfile::ideal();
        assert_eq!(p.flags_save_cost + p.trap_cost + p.mispredict_penalty, 0);
        assert_eq!(p.alu_cost, 1);
    }
}
