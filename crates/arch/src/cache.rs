/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.sets * self.ways * self.line_bytes
    }
}

/// A set-associative, LRU, write-allocate cache simulator.
///
/// Only hit/miss behaviour is modeled (no data storage, no writeback
/// traffic) — the cost models charge a fixed penalty per miss.
///
/// ```
/// use strata_arch::{CacheConfig, CacheSim};
/// let mut c = CacheSim::new(CacheConfig { sets: 2, ways: 1, line_bytes: 16 });
/// assert!(!c.access(0x00));  // cold miss
/// assert!(c.access(0x04));   // same line
/// assert!(!c.access(0x20));  // same set, evicts
/// assert!(!c.access(0x00));  // brought back
/// assert_eq!(c.misses(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU timestamps parallel to `tags`.
    stamps: Vec<u64>,
    /// `log2(line_bytes)`, so the per-access line computation is a shift
    /// instead of a hardware divide.
    line_shift: u32,
    /// `sets - 1` (sets is a power of two).
    set_mask: u32,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates a cold cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if any
    /// dimension is zero.
    pub fn new(config: CacheConfig) -> CacheSim {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(config.ways > 0, "associativity must be nonzero");
        let slots = (config.sets * config.ways) as usize;
        CacheSim {
            config,
            tags: vec![u64::MAX; slots],
            stamps: vec![0; slots],
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: config.sets - 1,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Simulates an access to `addr`; returns `true` on hit. Misses
    /// allocate the line, evicting LRU.
    #[inline]
    pub fn access(&mut self, addr: u32) -> bool {
        self.clock += 1;
        let line = (addr >> self.line_shift) as u64;
        let set = (line as u32) & self.set_mask;
        let base = (set * self.config.ways) as usize;
        let ways = self.config.ways as usize;

        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for slot in base..base + ways {
            if self.tags[slot] == line {
                self.stamps[slot] = self.clock;
                self.hits += 1;
                return true;
            }
            if self.stamps[slot] < victim_stamp {
                victim_stamp = self.stamps[slot];
                victim = slot;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Number of hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio in `0.0..=1.0` (0.0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        CacheSim::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 32,
        })
    }

    #[test]
    fn spatial_locality_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        for off in 1..32 {
            assert!(c.access(0x100 + off), "offset {off} shares the line");
        }
    }

    #[test]
    fn lru_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (line addresses multiples of 32*4).
        let a = 0x000;
        let b = 0x080;
        let d = 0x100;
        c.access(a);
        c.access(b);
        c.access(a); // a most recent
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b));
    }

    #[test]
    fn capacity() {
        assert_eq!(tiny().config().capacity(), 4 * 2 * 32);
    }

    #[test]
    fn miss_ratio_tracks() {
        let mut c = tiny();
        c.access(0);
        c.access(0);
        assert_eq!(c.miss_ratio(), 0.5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        CacheSim::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 32,
        });
    }
}
