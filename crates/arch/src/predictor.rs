/// A gshare conditional-branch predictor: a table of 2-bit saturating
/// counters indexed by `pc ⊕ global-history`.
///
/// ```
/// use strata_arch::CondPredictor;
/// let mut p = CondPredictor::new(10);
/// // An always-taken branch trains once the global history saturates.
/// let pc = 0x1000;
/// for _ in 0..16 { p.predict_and_update(pc, true); }
/// assert!(p.predict_and_update(pc, true));
/// ```
#[derive(Debug, Clone)]
pub struct CondPredictor {
    counters: Vec<u8>,
    mask: u32,
    index_bits: u32,
    /// Global-history register, masked to its *own* length — historically
    /// this reused the counter-index mask, silently clamping the history
    /// to `index_bits` outcomes.
    history: u32,
    hist_mask: u32,
    hits: u64,
    misses: u64,
}

impl CondPredictor {
    /// Creates a predictor with `2^index_bits` counters, initialized to
    /// weakly-not-taken, tracking `index_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> CondPredictor {
        CondPredictor::with_history(index_bits, index_bits)
    }

    /// Creates a predictor with `2^index_bits` counters and a
    /// `history_bits`-deep global history register. Histories longer than
    /// the index are folded (XOR of `index_bits`-wide chunks) into the
    /// counter index; `history_bits == 0` degenerates to a bimodal
    /// (pc-indexed) predictor.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24, or `history_bits`
    /// exceeds 32.
    pub fn with_history(index_bits: u32, history_bits: u32) -> CondPredictor {
        assert!(
            (1..=24).contains(&index_bits),
            "index_bits must be in 1..=24"
        );
        assert!(history_bits <= 32, "history_bits must be at most 32");
        CondPredictor {
            counters: vec![1; 1 << index_bits],
            mask: (1 << index_bits) - 1,
            index_bits,
            history: 0,
            hist_mask: if history_bits >= 32 {
                u32::MAX
            } else {
                (1u32 << history_bits).wrapping_sub(1)
            },
            hits: 0,
            misses: 0,
        }
    }

    /// The history register folded down to the counter-index width. When
    /// the history is no longer than the index this is the history itself,
    /// preserving the classic gshare indexing bit-for-bit.
    #[inline]
    fn folded_history(&self) -> u32 {
        let mut h = self.history;
        let mut f = 0;
        while h != 0 {
            f ^= h & self.mask;
            h >>= self.index_bits;
        }
        f
    }

    /// Returns the prediction for (`pc`, current history), then updates the
    /// predictor with the actual outcome. The return value is whether the
    /// *prediction was correct*.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let idx = (((pc >> 2) ^ self.folded_history()) & self.mask) as usize;
        let counter = self.counters[idx];
        let predicted_taken = counter >= 2;
        let correct = predicted_taken == taken;
        self.counters[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.history = ((self.history << 1) | taken as u32) & self.hist_mask;
        if correct {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        correct
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.misses
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.hits
    }
}

/// A direct-mapped branch target buffer for indirect transfers.
///
/// Each entry remembers the last target observed for an indirect branch at
/// a given `pc`. A size of zero models architectures with no indirect-branch
/// predictor (every indirect transfer mispredicts), as on the era SPARC and
/// MIPS parts the paper measured.
#[derive(Debug, Clone)]
pub struct Btb {
    /// `(tag_pc, target)` pairs; empty vector = no BTB.
    entries: Vec<(u32, u32)>,
    /// `entries.len() - 1` when entries exist (power-of-two index mask),
    /// 0 otherwise.
    mask: usize,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (0 = no predictor; otherwise must
    /// be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is nonzero and not a power of two.
    pub fn new(entries: u32) -> Btb {
        assert!(
            entries == 0 || entries.is_power_of_two(),
            "BTB entries must be 0 or a power of two"
        );
        Btb {
            entries: vec![(u32::MAX, 0); entries as usize],
            mask: (entries as usize).saturating_sub(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Predicts the target of the indirect branch at `pc`, then updates the
    /// entry with the actual `target`. Returns `true` if the prediction was
    /// correct.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u32, target: u32) -> bool {
        if self.entries.is_empty() {
            self.misses += 1;
            return false;
        }
        let idx = ((pc >> 2) as usize) & self.mask;
        let (tag, predicted) = self.entries[idx];
        let correct = tag == pc && predicted == target;
        self.entries[idx] = (pc, target);
        if correct {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        correct
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.misses
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.hits
    }
}

/// A fixed-depth return-address stack.
///
/// Calls push their fall-through address; returns pop and compare against
/// the actual target. Overflow wraps (overwriting the oldest entry), as in
/// real hardware.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u32>,
    top: usize,
    depth: usize,
    live: usize,
    hits: u64,
    misses: u64,
}

impl Ras {
    /// Creates a return-address stack of the given depth (0 disables it —
    /// every return mispredicts).
    pub fn new(depth: usize) -> Ras {
        Ras {
            stack: vec![0; depth.max(1)],
            top: 0,
            depth,
            live: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Records a call whose return will land at `return_addr`.
    #[inline]
    pub fn push(&mut self, return_addr: u32) {
        if self.depth == 0 {
            return;
        }
        self.top = (self.top + 1) % self.depth;
        self.stack[self.top] = return_addr;
        self.live = (self.live + 1).min(self.depth);
    }

    /// Pops a prediction and compares it with the actual return target.
    /// Returns `true` if predicted correctly.
    #[inline]
    pub fn pop_and_check(&mut self, target: u32) -> bool {
        if self.depth == 0 || self.live == 0 {
            self.misses += 1;
            return false;
        }
        let predicted = self.stack[self.top];
        self.top = (self.top + self.depth - 1) % self.depth;
        self.live -= 1;
        if predicted == target {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.misses
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_loop_branch() {
        let mut p = CondPredictor::new(8);
        let pc = 0x400;
        // Warm up until the global history saturates (all-taken) and the
        // final table entry trains, then expect sustained correct
        // predictions.
        for _ in 0..12 {
            p.predict_and_update(pc, true);
        }
        let before = p.mispredicts();
        for _ in 0..100 {
            p.predict_and_update(pc, true);
        }
        assert_eq!(p.mispredicts(), before);
    }

    #[test]
    fn history_length_is_decoupled_from_index_bits() {
        // Regression: history used to be masked with the counter-index
        // mask, so a "with more history" configuration silently behaved
        // like the short one. A period-6 pattern whose 4-outcome windows
        // are ambiguous (TTTT precedes both T and N) needs more than 4
        // bits of history to predict perfectly.
        let pattern = [true, true, true, true, true, false];
        let run = |mut p: CondPredictor| {
            for i in 0..600 {
                p.predict_and_update(0x1000, pattern[i % pattern.len()]);
            }
            let warm = p.mispredicts();
            for i in 600..1200 {
                p.predict_and_update(0x1000, pattern[i % pattern.len()]);
            }
            p.mispredicts() - warm
        };
        let short = run(CondPredictor::with_history(8, 4));
        let long = run(CondPredictor::with_history(8, 12));
        assert_eq!(long, 0, "12-bit history disambiguates the period");
        assert!(short > 0, "4-bit history stays ambiguous");
    }

    #[test]
    fn zero_history_degenerates_to_bimodal() {
        // An alternating branch defeats a pure bimodal predictor but is
        // trivial for any history-indexed one.
        let run = |mut p: CondPredictor| {
            for i in 0..200 {
                p.predict_and_update(0x2000, i % 2 == 0);
            }
            let warm = p.mispredicts();
            for i in 200..400 {
                p.predict_and_update(0x2000, i % 2 == 0);
            }
            p.mispredicts() - warm
        };
        assert_eq!(run(CondPredictor::new(10)), 0);
        assert!(run(CondPredictor::with_history(10, 0)) >= 100);
    }

    #[test]
    fn equal_history_matches_legacy_new() {
        // `new(n)` must stay bit-identical to `with_history(n, n)` — the
        // profiles set both fields equal precisely so charged cycles do
        // not move.
        let mut a = CondPredictor::new(8);
        let mut b = CondPredictor::with_history(8, 8);
        let mut state = 0x1234_5678_u32;
        for _ in 0..5000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            let pc = 0x1000 + (state & 0xFFC);
            let taken = state & 0x10000 != 0;
            assert_eq!(
                a.predict_and_update(pc, taken),
                b.predict_and_update(pc, taken)
            );
        }
        assert_eq!(a.mispredicts(), b.mispredicts());
        assert_eq!(a.correct(), b.correct());
    }

    #[test]
    fn btb_monomorphic_vs_polymorphic() {
        let mut b = Btb::new(64);
        let pc = 0x800;
        b.predict_and_update(pc, 0x1000); // cold miss
        assert!(b.predict_and_update(pc, 0x1000));
        assert!(!b.predict_and_update(pc, 0x2000)); // target changed
        assert!(b.predict_and_update(pc, 0x2000));
    }

    #[test]
    fn zero_entry_btb_always_misses() {
        let mut b = Btb::new(0);
        assert!(!b.predict_and_update(0x100, 0x200));
        assert!(!b.predict_and_update(0x100, 0x200));
        assert_eq!(b.correct(), 0);
    }

    #[test]
    fn ras_matches_balanced_calls() {
        let mut r = Ras::new(8);
        r.push(0x104);
        r.push(0x204);
        assert!(r.pop_and_check(0x204));
        assert!(r.pop_and_check(0x104));
        // Underflow mispredicts.
        assert!(!r.pop_and_check(0x104));
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert!(r.pop_and_check(3));
        assert!(r.pop_and_check(2));
        assert!(!r.pop_and_check(1));
    }

    #[test]
    fn zero_depth_ras() {
        let mut r = Ras::new(0);
        r.push(0x104);
        assert!(!r.pop_and_check(0x104));
    }
}
