/// A gshare conditional-branch predictor: a table of 2-bit saturating
/// counters indexed by `pc ⊕ global-history`.
///
/// ```
/// use strata_arch::CondPredictor;
/// let mut p = CondPredictor::new(10);
/// // An always-taken branch trains once the global history saturates.
/// let pc = 0x1000;
/// for _ in 0..16 { p.predict_and_update(pc, true); }
/// assert!(p.predict_and_update(pc, true));
/// ```
#[derive(Debug, Clone)]
pub struct CondPredictor {
    counters: Vec<u8>,
    mask: u32,
    history: u32,
    hits: u64,
    misses: u64,
}

impl CondPredictor {
    /// Creates a predictor with `2^index_bits` counters, initialized to
    /// weakly-not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> CondPredictor {
        assert!(
            (1..=24).contains(&index_bits),
            "index_bits must be in 1..=24"
        );
        CondPredictor {
            counters: vec![1; 1 << index_bits],
            mask: (1 << index_bits) - 1,
            history: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the prediction for (`pc`, current history), then updates the
    /// predictor with the actual outcome. The return value is whether the
    /// *prediction was correct*.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u32, taken: bool) -> bool {
        let idx = (((pc >> 2) ^ self.history) & self.mask) as usize;
        let counter = self.counters[idx];
        let predicted_taken = counter >= 2;
        let correct = predicted_taken == taken;
        self.counters[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        self.history = ((self.history << 1) | taken as u32) & self.mask;
        if correct {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        correct
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.misses
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.hits
    }
}

/// A direct-mapped branch target buffer for indirect transfers.
///
/// Each entry remembers the last target observed for an indirect branch at
/// a given `pc`. A size of zero models architectures with no indirect-branch
/// predictor (every indirect transfer mispredicts), as on the era SPARC and
/// MIPS parts the paper measured.
#[derive(Debug, Clone)]
pub struct Btb {
    /// `(tag_pc, target)` pairs; empty vector = no BTB.
    entries: Vec<(u32, u32)>,
    /// `entries.len() - 1` when entries exist (power-of-two index mask),
    /// 0 otherwise.
    mask: usize,
    hits: u64,
    misses: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (0 = no predictor; otherwise must
    /// be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is nonzero and not a power of two.
    pub fn new(entries: u32) -> Btb {
        assert!(
            entries == 0 || entries.is_power_of_two(),
            "BTB entries must be 0 or a power of two"
        );
        Btb {
            entries: vec![(u32::MAX, 0); entries as usize],
            mask: (entries as usize).saturating_sub(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Predicts the target of the indirect branch at `pc`, then updates the
    /// entry with the actual `target`. Returns `true` if the prediction was
    /// correct.
    #[inline]
    pub fn predict_and_update(&mut self, pc: u32, target: u32) -> bool {
        if self.entries.is_empty() {
            self.misses += 1;
            return false;
        }
        let idx = ((pc >> 2) as usize) & self.mask;
        let (tag, predicted) = self.entries[idx];
        let correct = tag == pc && predicted == target;
        self.entries[idx] = (pc, target);
        if correct {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        correct
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.misses
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.hits
    }
}

/// A fixed-depth return-address stack.
///
/// Calls push their fall-through address; returns pop and compare against
/// the actual target. Overflow wraps (overwriting the oldest entry), as in
/// real hardware.
#[derive(Debug, Clone)]
pub struct Ras {
    stack: Vec<u32>,
    top: usize,
    depth: usize,
    live: usize,
    hits: u64,
    misses: u64,
}

impl Ras {
    /// Creates a return-address stack of the given depth (0 disables it —
    /// every return mispredicts).
    pub fn new(depth: usize) -> Ras {
        Ras {
            stack: vec![0; depth.max(1)],
            top: 0,
            depth,
            live: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Records a call whose return will land at `return_addr`.
    #[inline]
    pub fn push(&mut self, return_addr: u32) {
        if self.depth == 0 {
            return;
        }
        self.top = (self.top + 1) % self.depth;
        self.stack[self.top] = return_addr;
        self.live = (self.live + 1).min(self.depth);
    }

    /// Pops a prediction and compares it with the actual return target.
    /// Returns `true` if predicted correctly.
    #[inline]
    pub fn pop_and_check(&mut self, target: u32) -> bool {
        if self.depth == 0 || self.live == 0 {
            self.misses += 1;
            return false;
        }
        let predicted = self.stack[self.top];
        self.top = (self.top + self.depth - 1) % self.depth;
        self.live -= 1;
        if predicted == target {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.misses
    }

    /// Correct predictions so far.
    pub fn correct(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_loop_branch() {
        let mut p = CondPredictor::new(8);
        let pc = 0x400;
        // Warm up until the global history saturates (all-taken) and the
        // final table entry trains, then expect sustained correct
        // predictions.
        for _ in 0..12 {
            p.predict_and_update(pc, true);
        }
        let before = p.mispredicts();
        for _ in 0..100 {
            p.predict_and_update(pc, true);
        }
        assert_eq!(p.mispredicts(), before);
    }

    #[test]
    fn btb_monomorphic_vs_polymorphic() {
        let mut b = Btb::new(64);
        let pc = 0x800;
        b.predict_and_update(pc, 0x1000); // cold miss
        assert!(b.predict_and_update(pc, 0x1000));
        assert!(!b.predict_and_update(pc, 0x2000)); // target changed
        assert!(b.predict_and_update(pc, 0x2000));
    }

    #[test]
    fn zero_entry_btb_always_misses() {
        let mut b = Btb::new(0);
        assert!(!b.predict_and_update(0x100, 0x200));
        assert!(!b.predict_and_update(0x100, 0x200));
        assert_eq!(b.correct(), 0);
    }

    #[test]
    fn ras_matches_balanced_calls() {
        let mut r = Ras::new(8);
        r.push(0x104);
        r.push(0x204);
        assert!(r.pop_and_check(0x204));
        assert!(r.pop_and_check(0x104));
        // Underflow mispredicts.
        assert!(!r.pop_and_check(0x104));
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert!(r.pop_and_check(3));
        assert!(r.pop_and_check(2));
        assert!(!r.pop_and_check(1));
    }

    #[test]
    fn zero_depth_ras() {
        let mut r = Ras::new(0);
        r.push(0x104);
        assert!(!r.pop_and_check(0x104));
    }
}
