//! Randomized tests for the microarchitecture simulators, driven by the
//! repo's deterministic [`SmallRng`] rather than an external
//! property-testing framework.

use strata_arch::{Btb, CacheConfig, CacheSim, CondPredictor, Ras};
use strata_stats::rng::SmallRng;

#[test]
fn cache_access_immediately_after_access_hits() {
    let mut rng = SmallRng::seed_from_u64(0xCAC4_0001);
    for _ in 0..50 {
        let mut c = CacheSim::new(CacheConfig {
            sets: 16,
            ways: 2,
            line_bytes: 32,
        });
        for _ in 0..rng.gen_range(1usize..200) {
            let a = rng.next_u32();
            c.access(a);
            assert!(
                c.access(a),
                "address {a:#x} must hit right after being brought in"
            );
        }
    }
}

#[test]
fn cache_counters_are_consistent() {
    let mut rng = SmallRng::seed_from_u64(0xCAC4_0002);
    for _ in 0..50 {
        let mut c = CacheSim::new(CacheConfig {
            sets: 8,
            ways: 4,
            line_bytes: 16,
        });
        let n = rng.gen_range(0usize..500);
        for _ in 0..n {
            c.access(rng.next_u32());
        }
        assert_eq!(c.hits() + c.misses(), n as u64);
        let r = c.miss_ratio();
        assert!((0.0..=1.0).contains(&r));
    }
}

#[test]
fn working_set_within_one_set_capacity_never_thrashes() {
    for ways in 1u32..8 {
        // `ways` distinct lines in the same set: after the cold pass, every
        // subsequent access hits (LRU keeps the whole working set).
        let cfg = CacheConfig {
            sets: 4,
            ways,
            line_bytes: 32,
        };
        let mut c = CacheSim::new(cfg);
        let set_stride = cfg.sets * cfg.line_bytes;
        let lines: Vec<u32> = (0..ways).map(|i| i * set_stride).collect();
        for &l in &lines {
            c.access(l);
        }
        let misses_after_warmup = c.misses();
        for _ in 0..5 {
            for &l in &lines {
                c.access(l);
            }
        }
        assert_eq!(c.misses(), misses_after_warmup);
    }
}

#[test]
fn btb_predicts_stable_targets_after_one_miss() {
    let mut rng = SmallRng::seed_from_u64(0xCAC4_0003);
    for _ in 0..50 {
        // Few distinct pcs, fixed targets, big BTB: at most one miss per pc.
        let pcs: Vec<u32> = (0..rng.gen_range(1usize..20))
            .map(|_| rng.gen_range(0u32..64) * 4)
            .collect();
        let mut btb = Btb::new(256);
        let target = |pc: u32| pc.wrapping_mul(13) & !3;
        for _ in 0..4 {
            for &pc in &pcs {
                btb.predict_and_update(pc, target(pc));
            }
        }
        let mut distinct = pcs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(btb.mispredicts() <= distinct.len() as u64);
    }
}

#[test]
fn ras_is_perfect_on_balanced_nesting() {
    let mut rng = SmallRng::seed_from_u64(0xCAC4_0004);
    for _ in 0..50 {
        // Nested call/return sequences within the RAS depth never mispredict.
        let depths: Vec<usize> = (0..rng.gen_range(1usize..20))
            .map(|_| rng.gen_range(1usize..8))
            .collect();
        let mut ras = Ras::new(16);
        for (i, &d) in depths.iter().enumerate() {
            let base = (i as u32 + 1) * 0x1000;
            let frames: Vec<u32> = (0..d as u32).map(|j| base + j * 8).collect();
            for &f in &frames {
                ras.push(f);
            }
            for &f in frames.iter().rev() {
                assert!(ras.pop_and_check(f));
            }
        }
        assert_eq!(ras.mispredicts(), 0);
    }
}

#[test]
fn gshare_total_counts_match() {
    let mut rng = SmallRng::seed_from_u64(0xCAC4_0005);
    for _ in 0..50 {
        let n = rng.gen_range(0usize..300);
        let mut p = CondPredictor::new(8);
        for i in 0..n {
            p.predict_and_update((i as u32 % 16) * 4, rng.gen_bool(0.5));
        }
        assert_eq!(p.correct() + p.mispredicts(), n as u64);
    }
}
