//! Property tests for the microarchitecture simulators.

use proptest::prelude::*;
use strata_arch::{Btb, CacheConfig, CacheSim, CondPredictor, Ras};

proptest! {
    #[test]
    fn cache_access_immediately_after_access_hits(addrs in prop::collection::vec(any::<u32>(), 1..200)) {
        let mut c = CacheSim::new(CacheConfig { sets: 16, ways: 2, line_bytes: 32 });
        for a in addrs {
            c.access(a);
            prop_assert!(c.access(a), "address {a:#x} must hit right after being brought in");
        }
    }

    #[test]
    fn cache_counters_are_consistent(addrs in prop::collection::vec(any::<u32>(), 0..500)) {
        let mut c = CacheSim::new(CacheConfig { sets: 8, ways: 4, line_bytes: 16 });
        for a in &addrs {
            c.access(*a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        let r = c.miss_ratio();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn working_set_within_one_set_capacity_never_thrashes(ways in 1u32..8) {
        // `ways` distinct lines in the same set: after the cold pass, every
        // subsequent access hits (LRU keeps the whole working set).
        let cfg = CacheConfig { sets: 4, ways, line_bytes: 32 };
        let mut c = CacheSim::new(cfg);
        let set_stride = cfg.sets * cfg.line_bytes;
        let lines: Vec<u32> = (0..ways).map(|i| i * set_stride).collect();
        for &l in &lines {
            c.access(l);
        }
        let misses_after_warmup = c.misses();
        for _ in 0..5 {
            for &l in &lines {
                c.access(l);
            }
        }
        prop_assert_eq!(c.misses(), misses_after_warmup);
    }

    #[test]
    fn btb_predicts_stable_targets_after_one_miss(
        pcs in prop::collection::vec((0u32..64).prop_map(|i| i * 4), 1..20),
    ) {
        // Few distinct pcs, fixed targets, big BTB: at most one miss per pc.
        let mut btb = Btb::new(256);
        let target = |pc: u32| pc.wrapping_mul(13) & !3;
        for _ in 0..4 {
            for &pc in &pcs {
                btb.predict_and_update(pc, target(pc));
            }
        }
        let mut distinct = pcs.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(btb.mispredicts() <= distinct.len() as u64);
    }

    #[test]
    fn ras_is_perfect_on_balanced_nesting(depths in prop::collection::vec(1usize..8, 1..20)) {
        // Nested call/return sequences within the RAS depth never mispredict.
        let mut ras = Ras::new(16);
        for (i, &d) in depths.iter().enumerate() {
            let base = (i as u32 + 1) * 0x1000;
            let frames: Vec<u32> = (0..d as u32).map(|j| base + j * 8).collect();
            for &f in &frames {
                ras.push(f);
            }
            for &f in frames.iter().rev() {
                assert!(ras.pop_and_check(f));
            }
        }
        prop_assert_eq!(ras.mispredicts(), 0);
    }

    #[test]
    fn gshare_total_counts_match(outcomes in prop::collection::vec(any::<bool>(), 0..300)) {
        let mut p = CondPredictor::new(8);
        for (i, &taken) in outcomes.iter().enumerate() {
            p.predict_and_update((i as u32 % 16) * 4, taken);
        }
        prop_assert_eq!(p.correct() + p.mispredicts(), outcomes.len() as u64);
    }
}
