//! Equivalence property test for the fused interpreter loop.
//!
//! [`Machine::run`] executes through the predecoded fast path;
//! [`Machine::step`] always takes the general fetch. The two are
//! documented to be bit-identical, and the charged guest cycles must not
//! depend on which one drove execution — that invariant is what lets the
//! hot loop be optimized freely without perturbing any experiment.
//!
//! Each trial draws a random SimRISC program from the shared
//! `strata-testgen` word generator (ALU ops, memory traffic,
//! calls/returns, indirect jumps, traps, deliberate error cases, and
//! **self-modifying stores into the code region**), then runs it twice
//! from identical initial state: once with `run` in random fuel slices,
//! once with a reference single-`step` loop consuming the same slices. At
//! every boundary (trap, halt, out-of-fuel, error) the CPU state, the
//! full retire-event streams, and the [`ArchModel`] cost/cache/predictor
//! counters must agree exactly.
//!
//! The tier-vs-tier analogue of this test (interp vs threaded) lives in
//! the workspace-level `difftest` suite on the same generator.

use strata_machine::{MachineError, StepOutcome};
use strata_stats::rng::SmallRng;
use strata_testgen::harness::{profile_for, run_by_steps, Recorder};
use strata_testgen::wordgen::WordProgram;

#[test]
fn fused_run_loop_matches_single_stepping() {
    let mut rng = SmallRng::seed_from_u64(0x57E9_0001);
    let mut total_retired = 0usize;
    for trial in 0..120u64 {
        let prog = WordProgram::generate(&mut rng);
        let mut fast = prog.instantiate();
        let mut reference = prog.instantiate();
        let mut rec_fast = Recorder::new(profile_for(trial));
        let mut rec_ref = Recorder::new(profile_for(trial));

        let mut steps = 0u64;
        while steps < 3_000 {
            let fuel = rng.gen_range(1u64..64);
            steps += fuel;
            let a = fast.run(&mut rec_fast, fuel);
            let b = run_by_steps(&mut reference, &mut rec_ref, fuel);
            assert_eq!(a, b, "trial {trial}: outcome diverged after ≤{steps} steps");
            assert_eq!(
                fast.cpu(),
                reference.cpu(),
                "trial {trial}: CPU state diverged after ≤{steps} steps"
            );
            assert_eq!(
                rec_fast.events, rec_ref.events,
                "trial {trial}: retire streams diverged after ≤{steps} steps"
            );
            assert_eq!(
                rec_fast.model.stats(),
                rec_ref.model.stats(),
                "trial {trial}"
            );
            assert_eq!(rec_fast.model.total_cycles(), rec_ref.model.total_cycles());
            assert_eq!(
                rec_fast.model.icache().hits(),
                rec_ref.model.icache().hits()
            );
            assert_eq!(
                rec_fast.model.icache().misses(),
                rec_ref.model.icache().misses()
            );
            assert_eq!(
                rec_fast.model.dcache().hits(),
                rec_ref.model.dcache().hits()
            );
            assert_eq!(
                rec_fast.model.dcache().misses(),
                rec_ref.model.dcache().misses()
            );
            assert_eq!(
                rec_fast.model.indirect_mispredicts(),
                rec_ref.model.indirect_mispredicts()
            );
            assert_eq!(
                rec_fast.model.cond_mispredicts(),
                rec_ref.model.cond_mispredicts()
            );
            match a {
                Ok(StepOutcome::Halted)
                | Err(MachineError::OutOfBounds { .. })
                | Err(MachineError::UnalignedPc { .. })
                | Err(MachineError::Decode { .. }) => break,
                Ok(StepOutcome::Running)
                | Ok(StepOutcome::Trap(_))
                | Err(MachineError::OutOfFuel { .. }) => {}
            }
        }
        total_retired += rec_fast.events.len();
    }
    // Sanity-check the generator: a healthy fraction of programs must
    // actually execute (a trial can legitimately retire nothing when its
    // first instruction faults, but not most of them).
    assert!(
        total_retired > 20_000,
        "only {total_retired} instructions retired over all trials"
    );
}
