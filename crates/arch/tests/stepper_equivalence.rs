//! Equivalence property test for the fused interpreter loop.
//!
//! [`Machine::run`] executes through the predecoded fast path;
//! [`Machine::step`] always takes the general fetch. The two are
//! documented to be bit-identical, and the charged guest cycles must not
//! depend on which one drove execution — that invariant is what lets the
//! hot loop be optimized freely without perturbing any experiment.
//!
//! Each trial builds a random SimRISC program (ALU ops, memory traffic,
//! calls/returns, indirect jumps, traps, deliberate error cases, and
//! **self-modifying stores into the code region**), then runs it twice
//! from identical initial state: once with `run` in random fuel slices,
//! once with a reference single-`step` loop consuming the same slices. At
//! every boundary (trap, halt, out-of-fuel, error) the CPU state, the
//! full retire-event streams, and the [`ArchModel`] cost/cache/predictor
//! counters must agree exactly.

use strata_arch::{ArchModel, ArchProfile};
use strata_isa::{encode, Instr, Reg};
use strata_machine::{layout, ExecutionObserver, Machine, MachineError, RetireEvent, StepOutcome};
use strata_stats::rng::SmallRng;

const CODE_LEN: usize = 48;

fn reg(i: u8) -> Reg {
    Reg::try_from(i).unwrap()
}

/// Scratch destinations; r5..r8 are reserved as pre-seeded address /
/// payload registers so most generated traffic stays in bounds.
fn scratch(rng: &mut SmallRng) -> Reg {
    const SCRATCH: [u8; 8] = [1, 2, 3, 4, 9, 10, 11, 12];
    reg(SCRATCH[rng.gen_range(0usize..SCRATCH.len())])
}

/// Any register as a source operand.
fn any_reg(rng: &mut SmallRng) -> Reg {
    reg(rng.gen_range(0u8..16))
}

fn code_slot(rng: &mut SmallRng) -> u32 {
    layout::APP_BASE + rng.gen_range(0u32..CODE_LEN as u32) * 4
}

/// A word slot for the absolutely-addressed ops (`lwa`/`swa`/`jmem`),
/// whose encoding caps addresses at 20 bits — use low memory, below the
/// code region at `APP_BASE`.
fn low_slot(rng: &mut SmallRng) -> u32 {
    0x400 + rng.gen_range(0u32..256) * 4
}

/// A conditional-branch offset from slot `i` landing inside the region.
fn branch_off(rng: &mut SmallRng, i: usize) -> i16 {
    let target = rng.gen_range(0u32..CODE_LEN as u32) as i32;
    (target - i as i32 - 1) as i16
}

/// A random instruction for slot `i` of the program.
fn gen_instr(rng: &mut SmallRng, i: usize) -> Instr {
    let rd = scratch(rng);
    let rs1 = any_reg(rng);
    let rs2 = any_reg(rng);
    match rng.gen_range(0u32..100) {
        0..=11 => match rng.gen_range(0u32..6) {
            0 => Instr::Add { rd, rs1, rs2 },
            1 => Instr::Sub { rd, rs1, rs2 },
            2 => Instr::Xor { rd, rs1, rs2 },
            3 => Instr::And { rd, rs1, rs2 },
            4 => Instr::Or { rd, rs1, rs2 },
            _ => Instr::Sll { rd, rs1, rs2 },
        },
        12..=21 => match rng.gen_range(0u32..4) {
            0 => Instr::Addi {
                rd,
                rs1,
                imm: (rng.gen_range(0u32..1000) as i32 - 500) as i16,
            },
            1 => Instr::Ori {
                rd,
                rs1,
                imm: rng.next_u32() as u16,
            },
            2 => Instr::Slli {
                rd,
                rs1,
                shamt: rng.gen_range(0u32..32) as u8,
            },
            _ => Instr::Lui {
                rd,
                imm: rng.next_u32() as u16,
            },
        },
        22..=27 => match rng.gen_range(0u32..3) {
            0 => Instr::Mul { rd, rs1, rs2 },
            1 => Instr::Divu { rd, rs1, rs2 },
            _ => Instr::Remu { rd, rs1, rs2 },
        },
        // Loads/stores through the pre-seeded data pointer in r5.
        28..=39 => {
            let off = rng.gen_range(0u32..64) as i16;
            match rng.gen_range(0u32..4) {
                0 => Instr::Lw {
                    rd,
                    rs1: reg(5),
                    off,
                },
                1 => Instr::Sw {
                    rs2: rs1,
                    rs1: reg(5),
                    off,
                },
                2 => Instr::Lbu {
                    rd,
                    rs1: reg(5),
                    off,
                },
                _ => Instr::Sb {
                    rs2: rs1,
                    rs1: reg(5),
                    off,
                },
            }
        }
        40..=45 => match rng.gen_range(0u32..2) {
            0 => Instr::Cmp { rs1, rs2 },
            _ => Instr::Cmpi {
                rs1,
                imm: (rng.gen_range(0u32..200) as i32 - 100) as i16,
            },
        },
        46..=55 => {
            let off = branch_off(rng, i);
            match rng.gen_range(0u32..4) {
                0 => Instr::Beq { off },
                1 => Instr::Bne { off },
                2 => Instr::Blt { off },
                _ => Instr::Bgeu { off },
            }
        }
        56..=61 => match rng.gen_range(0u32..2) {
            0 => Instr::Jmp {
                target: code_slot(rng),
            },
            _ => Instr::Call {
                target: code_slot(rng),
            },
        },
        // r6 holds an aligned code address; r8 a deliberately unaligned
        // one, so both paths must surface the same UnalignedPc error.
        62..=66 => {
            let rs = if rng.gen_range(0u32..8) == 0 {
                reg(8)
            } else {
                reg(6)
            };
            if rng.gen_bool(0.5) {
                Instr::Jr { rs }
            } else {
                Instr::Callr { rs }
            }
        }
        67..=70 => Instr::Ret,
        71..=76 => {
            if rng.gen_bool(0.5) {
                Instr::Push { rs: rs1 }
            } else {
                Instr::Pop { rd }
            }
        }
        // Self-modifying store: r7 holds a valid encoded instruction and
        // r6 a code address, so this patches live code and must
        // invalidate the predecoded page.
        77..=82 => Instr::Sw {
            rs2: reg(7),
            rs1: reg(6),
            off: (rng.gen_range(0u32..8) * 4) as i16,
        },
        83..=87 => {
            if rng.gen_bool(0.5) {
                Instr::Swa {
                    rs: rs1,
                    addr: low_slot(rng),
                }
            } else {
                Instr::Lwa {
                    rd,
                    addr: low_slot(rng),
                }
            }
        }
        88..=89 => {
            if rng.gen_bool(0.5) {
                Instr::Pushf
            } else {
                Instr::Popf
            }
        }
        90..=92 => Instr::Trap {
            code: rng.gen_range(0u32..1000) as u16,
        },
        93 => Instr::Jmem {
            addr: low_slot(rng),
        },
        94 => Instr::Halt,
        _ => Instr::Nop,
    }
}

/// Records the retire stream and forwards it to a cost model.
struct Recorder {
    events: Vec<RetireEvent>,
    model: ArchModel,
}

impl ExecutionObserver for Recorder {
    fn on_retire(&mut self, ev: &RetireEvent) {
        self.events.push(*ev);
        self.model.on_retire(ev);
    }
}

/// Reference semantics of [`Machine::run`], expressed with `step` only.
fn run_by_steps(
    m: &mut Machine,
    obs: &mut Recorder,
    fuel: u64,
) -> Result<StepOutcome, MachineError> {
    for _ in 0..fuel {
        match m.step(obs)? {
            StepOutcome::Running => {}
            outcome => return Ok(outcome),
        }
    }
    Err(MachineError::OutOfFuel { steps: fuel })
}

fn profile_for(trial: u64) -> ArchProfile {
    match trial % 4 {
        0 => ArchProfile::x86_like(),
        1 => ArchProfile::sparc_like(),
        2 => ArchProfile::mips_like(),
        _ => ArchProfile::ideal(),
    }
}

#[test]
fn fused_run_loop_matches_single_stepping() {
    let mut rng = SmallRng::seed_from_u64(0x57E9_0001);
    let mut total_retired = 0usize;
    for trial in 0..120u64 {
        let program: Vec<u32> = (0..CODE_LEN - 1)
            .map(|i| encode(&gen_instr(&mut rng, i)))
            .chain([encode(&Instr::Halt)])
            .collect();
        // The payload r7 patches into code must itself be decodable.
        let patch = match rng.gen_range(0u32..3) {
            0 => Instr::Nop,
            1 => Instr::Addi {
                rd: scratch(&mut rng),
                rs1: scratch(&mut rng),
                imm: (rng.gen_range(0u32..200) as i32 - 100) as i16,
            },
            _ => Instr::Halt,
        };
        let seeds: [u32; 4] = [
            rng.next_u32(),
            rng.next_u32(),
            rng.next_u32(),
            rng.next_u32(),
        ];
        let code_target = code_slot(&mut rng);

        let setup = || {
            let mut m = Machine::new(layout::DEFAULT_MEM_BYTES);
            m.write_code(layout::APP_BASE, &program).unwrap();
            let cpu = m.cpu_mut();
            cpu.pc = layout::APP_BASE;
            for (i, &v) in seeds.iter().enumerate() {
                cpu.set_reg(reg(1 + i as u8), v);
            }
            cpu.set_reg(reg(5), layout::APP_DATA_BASE);
            cpu.set_reg(reg(6), code_target);
            cpu.set_reg(reg(7), encode(&patch));
            cpu.set_reg(reg(8), code_target + 2); // unaligned
            m
        };
        let mut fast = setup();
        let mut reference = setup();
        let mut rec_fast = Recorder {
            events: Vec::new(),
            model: ArchModel::new(profile_for(trial)),
        };
        let mut rec_ref = Recorder {
            events: Vec::new(),
            model: ArchModel::new(profile_for(trial)),
        };

        let mut steps = 0u64;
        while steps < 3_000 {
            let fuel = rng.gen_range(1u64..64);
            steps += fuel;
            let a = fast.run(&mut rec_fast, fuel);
            let b = run_by_steps(&mut reference, &mut rec_ref, fuel);
            assert_eq!(a, b, "trial {trial}: outcome diverged after ≤{steps} steps");
            assert_eq!(
                fast.cpu(),
                reference.cpu(),
                "trial {trial}: CPU state diverged after ≤{steps} steps"
            );
            assert_eq!(
                rec_fast.events, rec_ref.events,
                "trial {trial}: retire streams diverged after ≤{steps} steps"
            );
            assert_eq!(
                rec_fast.model.stats(),
                rec_ref.model.stats(),
                "trial {trial}"
            );
            assert_eq!(rec_fast.model.total_cycles(), rec_ref.model.total_cycles());
            assert_eq!(
                rec_fast.model.icache().hits(),
                rec_ref.model.icache().hits()
            );
            assert_eq!(
                rec_fast.model.icache().misses(),
                rec_ref.model.icache().misses()
            );
            assert_eq!(
                rec_fast.model.dcache().hits(),
                rec_ref.model.dcache().hits()
            );
            assert_eq!(
                rec_fast.model.dcache().misses(),
                rec_ref.model.dcache().misses()
            );
            assert_eq!(
                rec_fast.model.indirect_mispredicts(),
                rec_ref.model.indirect_mispredicts()
            );
            assert_eq!(
                rec_fast.model.cond_mispredicts(),
                rec_ref.model.cond_mispredicts()
            );
            match a {
                Ok(StepOutcome::Halted)
                | Err(MachineError::OutOfBounds { .. })
                | Err(MachineError::UnalignedPc { .. })
                | Err(MachineError::Decode { .. }) => break,
                Ok(StepOutcome::Running)
                | Ok(StepOutcome::Trap(_))
                | Err(MachineError::OutOfFuel { .. }) => {}
            }
        }
        total_retired += rec_fast.events.len();
    }
    // Sanity-check the generator: a healthy fraction of programs must
    // actually execute (a trial can legitimately retire nothing when its
    // first instruction faults, but not most of them).
    assert!(
        total_retired > 20_000,
        "only {total_retired} instructions retired over all trials"
    );
}
