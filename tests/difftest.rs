//! Differential tests for the execution tiers.
//!
//! The lockstep harness (`strata-testgen::harness`) runs each randomized
//! program — including self-modifying stores that must invalidate
//! translated superblocks — on two tiers from identical initial state
//! and asserts identical outcome, CPU, retire-stream, cost-model, and
//! memory state at every randomized fuel boundary. Failures are shrunk
//! and written to `target/difftest-failures/*.sasm`.
//!
//! `STRATA_DIFFTEST_LONG=1` multiplies the case counts by 10 for a
//! nightly-style longer fuzz; the default counts are sized for CI.

use strata_asm::assemble;
use strata_isa::{encode, Instr, Reg};
use strata_machine::{layout, ExecTier, TierConfig, TierMutation};
use strata_stats::rng::SmallRng;
use strata_testgen::harness::{run_difftest, run_lockstep, shrink, LockstepOptions};
use strata_testgen::wordgen::WordProgram;

fn threaded(threshold: u32) -> ExecTier {
    ExecTier::Threaded(TierConfig {
        threshold,
        ..TierConfig::default()
    })
}

fn cases(base: u64) -> u64 {
    match std::env::var("STRATA_DIFFTEST_LONG") {
        Ok(v) if v == "1" => base * 10,
        _ => base,
    }
}

/// The headline gate: interpreter vs threaded translation tier over the
/// full randomized distribution (ALU soup, faults, traps, indirect
/// control, and SMC stores into live code). A low promotion threshold
/// keeps most retired instructions inside translated superblocks.
#[test]
fn interp_vs_threaded_lockstep() {
    let opts = LockstepOptions {
        tier_a: ExecTier::Interp,
        tier_b: threaded(4),
        ..LockstepOptions::default()
    };
    run_difftest("interp-vs-threaded", 0xD1FF_0000, cases(200), &opts);
}

/// Two threaded tiers with different promotion thresholds translate
/// different region sets — they must still agree with each other
/// everywhere (catches bugs that only surface block-vs-block).
#[test]
fn threaded_thresholds_agree() {
    let opts = LockstepOptions {
        tier_a: threaded(1),
        tier_b: threaded(7),
        ..LockstepOptions::default()
    };
    run_difftest("threaded-vs-threaded", 0xD1FF_8000, cases(40), &opts);
}

/// Minimized reproducers must round-trip: the `.sasm` text the harness
/// writes reassembles to the exact word sequence of the failing case.
#[test]
fn reproducers_reassemble_bit_identically() {
    let mut rng = SmallRng::seed_from_u64(0x5A5A);
    for _ in 0..20 {
        let prog = WordProgram::generate(&mut rng);
        let words = assemble(layout::APP_BASE, &prog.to_sasm()).expect("reproducer reassembles");
        assert_eq!(words, prog.words, "reproducer text drifted from program");
    }
}

/// Mutation-style negative test (the PR 5 verifier-sensitivity proof,
/// applied to the tier): corrupt one translated superblock's side-exit
/// target and assert the harness reports divergence within bounded
/// fuel. If this test ever passes with `corrupt_b` silently doing
/// nothing, the `run_lockstep(...).is_err()` assertion fails — the
/// harness cannot go blind without this noticing.
#[test]
fn mutation_injected_tier_bug_is_caught() {
    // A hot counted loop whose accumulator does NOT cancel under
    // re-execution, so any control-flow corruption is observable.
    let words = vec![
        encode(&Instr::Addi {
            rd: Reg::R1,
            rs1: Reg::R1,
            imm: 200,
        }),
        encode(&Instr::Addi {
            rd: Reg::R1,
            rs1: Reg::R1,
            imm: -1,
        }), // <- loop head
        encode(&Instr::Add {
            rd: Reg::R2,
            rs1: Reg::R2,
            rs2: Reg::R1,
        }),
        encode(&Instr::Cmpi {
            rs1: Reg::R1,
            imm: 0,
        }),
        encode(&Instr::Bne { off: -4 }),
        encode(&Instr::Halt),
    ];
    let prog = WordProgram {
        words,
        seeds: [0; 4],
        patch: Instr::Nop,
        code_target: layout::APP_BASE,
    };
    let mut opts = LockstepOptions {
        tier_a: ExecTier::Interp,
        tier_b: threaded(4),
        ..LockstepOptions::default()
    };

    // Sanity: the clean tiers agree and the loop actually runs hot.
    let clean = run_lockstep(&prog, 42, &opts).expect("clean tiers agree");
    assert!(clean.retired > 500, "loop must retire enough to go hot");

    // Inject the bug: the harness must catch it within its fuel bound.
    opts.corrupt_b = true;
    let div = run_lockstep(&prog, 42, &opts);
    assert!(
        div.is_err(),
        "corrupted side-exit target must produce a divergence"
    );

    // And the shrinker must preserve the failure while never growing it.
    let min = shrink(&prog, 42, &opts);
    assert!(min.words.len() <= prog.words.len() + 1);
    assert!(run_lockstep(&min, 42, &opts).is_err());
}

/// Every lowered-op defect class the translation validator proves
/// sensitivity against must also surface dynamically: injecting it into
/// a hot translated loop diverges the lockstep harness. This keeps the
/// static validator and the differential tester honest against the same
/// mutation vocabulary.
#[test]
fn lowered_op_mutation_classes_diverge() {
    // A hot counted loop with a non-commutative accumulator (`sub`), an
    // immediate op, and a fused cmp+branch — every defect class has an
    // eligible op once translated.
    let words = vec![
        encode(&Instr::Addi {
            rd: Reg::R1,
            rs1: Reg::R1,
            imm: 200,
        }),
        encode(&Instr::Addi {
            rd: Reg::R1,
            rs1: Reg::R1,
            imm: -1,
        }), // <- loop head
        encode(&Instr::Sub {
            rd: Reg::R2,
            rs1: Reg::R2,
            rs2: Reg::R1,
        }),
        encode(&Instr::Cmpi {
            rs1: Reg::R1,
            imm: 0,
        }),
        encode(&Instr::Bne { off: -4 }),
        encode(&Instr::Halt),
    ];
    let prog = WordProgram {
        words,
        seeds: [0; 4],
        patch: Instr::Nop,
        code_target: layout::APP_BASE,
    };
    for mutation in TierMutation::ALL {
        // The fuel-boundary skew needs a block-cap fall-through stub to
        // target; a tiny block cap guarantees one.
        let tier_b = if mutation == TierMutation::FuelBoundarySkew {
            ExecTier::Threaded(TierConfig {
                threshold: 4,
                max_block: 2,
            })
        } else {
            threaded(4)
        };
        let mut opts = LockstepOptions {
            tier_a: ExecTier::Interp,
            tier_b,
            ..LockstepOptions::default()
        };

        let clean = run_lockstep(&prog, 42, &opts).expect("clean tiers agree");
        assert!(clean.retired > 500, "loop must retire enough to go hot");

        opts.corrupt_b_lowered = Some(mutation);
        let div = run_lockstep(&prog, 42, &opts);
        assert!(
            div.is_err(),
            "injected {} must produce a divergence",
            mutation.name()
        );
    }
}
