//! End-to-end: every SPEC stand-in workload produces bit-identical
//! observable results under translation, for a representative set of
//! mechanism configurations.

use strata_arch::ArchProfile;
use strata_core::{run_native, RetMechanism, Sdt, SdtConfig};
use strata_workloads::{registry, Params};

const FUEL: u64 = 400_000_000;

fn configs() -> Vec<SdtConfig> {
    let mut fast = SdtConfig::ibtc_inline(1024);
    fast.ret = RetMechanism::FastReturn;
    vec![
        SdtConfig::ibtc_inline(1024),
        SdtConfig::sieve(1024),
        SdtConfig::tuned(1024, 512),
        fast,
    ]
}

#[test]
fn all_workloads_translate_correctly() {
    let params = Params::default();
    for spec in registry() {
        let program = (spec.build)(&params);
        let native = run_native(&program, ArchProfile::x86_like(), FUEL)
            .unwrap_or_else(|e| panic!("[{}] native run failed: {e}", spec.name));
        assert!(
            native.instructions > 100_000,
            "[{}] workload too small",
            spec.name
        );

        for cfg in configs() {
            let mut sdt = Sdt::new(cfg, &program).expect("sdt constructs");
            let report = sdt
                .run(ArchProfile::x86_like(), FUEL)
                .unwrap_or_else(|e| panic!("[{}] {} failed: {e}", spec.name, cfg.describe()));
            assert_eq!(
                report.checksum,
                native.checksum,
                "[{}] checksum mismatch under {}",
                spec.name,
                cfg.describe()
            );
            assert!(
                report.total_cycles > native.total_cycles,
                "[{}] {}: SDT cannot beat native",
                spec.name,
                cfg.describe()
            );
            // The app did the same amount of real work. Control transfers
            // (jmp/call/jr/ret) are *replaced* by trampolines and dispatch
            // sequences rather than copied, so the app-origin count sits
            // slightly below the native count but never above it.
            assert!(
                report.instrs_by_origin[0] <= native.instructions,
                "[{}] {}: more app instructions than native?",
                spec.name,
                cfg.describe()
            );
            assert!(
                report.instrs_by_origin[0] >= native.instructions * 3 / 4,
                "[{}] {}: translated app instructions vanished ({} vs {})",
                spec.name,
                cfg.describe(),
                report.instrs_by_origin[0],
                native.instructions
            );
        }
    }
}

#[test]
fn ib_heavy_workloads_visit_the_dispatch_path() {
    let params = Params::default();
    for name in ["perlbmk", "eon", "gcc"] {
        let program = (strata_workloads::by_name(name).unwrap().build)(&params);
        let native = run_native(&program, ArchProfile::x86_like(), FUEL).unwrap();
        let mut sdt = Sdt::new(SdtConfig::ibtc_inline(4096), &program).unwrap();
        let report = sdt.run(ArchProfile::x86_like(), FUEL).unwrap();
        let expected = native.indirect_jumps + native.indirect_calls + native.returns;
        let seen = report.mech.ib_dispatches + report.mech.ret_dispatches;
        assert_eq!(
            seen, expected,
            "[{name}] every native IB must dispatch exactly once"
        );
        assert!(
            report.mech.ib_hit_rate() > 0.95,
            "[{name}] a 4K-entry IBTC should hit nearly always: {}",
            report.mech.ib_hit_rate()
        );
    }
}
