//! `strata verify` over every registered mechanism and the mixed-policy
//! configurations of the fig. 18 experiment: the checker must come back
//! clean on everything the translator emits, and a deliberately
//! corrupted cache must be flagged.

use strata_analysis::{self as analysis, CacheImage, Lint};
use strata_arch::ArchProfile;
use strata_core::{Sdt, SdtConfig};
use strata_isa::{encode, Instr, Reg};
use strata_lab::cli::{parse_config, parse_policy};
use strata_workloads::{by_name, Params};

const FUEL: u64 = 400_000_000;

/// Every single-mechanism configuration in `mechanism_registry()`, as CLI
/// specs: each IB mechanism in each shape (shared/per-site, inline/outline,
/// 1/2-way, adaptive) and each return mechanism.
const SINGLE_CONFIGS: &[(&str, &str)] = &[
    ("reentry", ""),
    ("ibtc:4096", ""),
    ("ibtc-outline:4096", ""),
    ("ibtc-persite:64", ""),
    ("ibtc:512", "jump=ibtc:512x2,call=ibtc:512x2"),
    ("sieve:4096", ""),
    ("ibtc:512", "jump=adaptive:64,256,4,call=adaptive:64,256,4"),
    ("ibtc:512", "jump=predictive:256,64,call=predictive:256,64"),
    ("tuned:512,1024", ""),
    ("fastret:4096", ""),
    ("shadow:4096,1024", ""),
    ("ibtc:4096+noflags", ""),
    ("sieve:1024+noflags", ""),
];

/// CLI mirrors of the fig. 18 mixed-policy configurations.
const MIXED_CONFIGS: &[(&str, &str)] = &[
    ("tuned:512,1024", "jump=sieve:4096,call=ibtc:512x2"),
    ("tuned:4096,1024", "call=sieve:1024"),
    (
        "tuned:512,1024",
        "jump=sieve:4096,call=ibtc:512x2,ret=shadow:1024",
    ),
    ("tuned:512,1024", "jump=predictive:1024,64,call=ibtc:512x2"),
];

fn config_for(spec: &str, policy: &str) -> SdtConfig {
    let mut cfg = parse_config(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
    if !policy.is_empty() {
        parse_policy(policy, &mut cfg).unwrap_or_else(|e| panic!("{policy}: {e}"));
    }
    cfg.validate().unwrap_or_else(|e| panic!("{spec}: {e:?}"));
    cfg
}

fn image_for(workload: &str, cfg: SdtConfig) -> CacheImage {
    let program = (by_name(workload).unwrap().build)(&Params::default());
    let mut sdt = Sdt::new(cfg, &program).expect("sdt constructs");
    sdt.run(ArchProfile::x86_like(), FUEL)
        .expect("run completes");
    CacheImage::capture(&sdt)
}

fn assert_clean(workload: &str, spec: &str, policy: &str) {
    let img = image_for(workload, config_for(spec, policy));
    let report = analysis::verify_image(&img);
    assert!(
        report.is_clean(),
        "[{workload}] `{spec}` policy `{policy}` not clean:\n{}",
        report.render_text()
    );
    assert!(
        report.stats.fragments > 0,
        "[{workload}] `{spec}` translated nothing"
    );
    assert!(
        report.stats.edges > 0,
        "[{workload}] `{spec}` recovered no edges"
    );
}

#[test]
fn all_single_mechanism_configs_verify_clean() {
    for (spec, policy) in SINGLE_CONFIGS {
        assert_clean("perlbmk", spec, policy);
    }
}

#[test]
fn mixed_policy_configs_verify_clean() {
    for (spec, policy) in MIXED_CONFIGS {
        assert_clean("perlbmk", spec, policy);
    }
}

#[test]
fn call_heavy_workload_verifies_clean_under_return_mechanisms() {
    for (spec, policy) in [
        ("tuned:512,1024", ""),
        ("fastret:512", ""),
        ("shadow:512,256", ""),
    ] {
        assert_clean("eon", spec, policy);
    }
}

/// Corrupting an unlinked exit trampoline's spill head into a `cmp` must
/// trip the flags-liveness lint: at that point the application's flags
/// are live and unsaved, so a flags-writing instruction is a clobber.
#[test]
fn clobbering_mutation_is_flagged() {
    let mut img = image_for("perlbmk", config_for("ibtc:4096+nolink", ""));
    let unlinked = img
        .meta
        .exit_sites
        .iter()
        .map(|e| e.patch_addr)
        .find(|&a| {
            matches!(
                img.line_at(a).and_then(|l| l.instr),
                Some(Instr::Swa { .. })
            )
        })
        .expect("an unlinked exit trampoline head");
    let clobber = Instr::Cmp {
        rs1: Reg::R1,
        rs2: Reg::R2,
    };
    img.patch_word(unlinked, encode(&clobber));
    let report = analysis::verify_image(&img);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::FlagsClobber && d.addr == unlinked),
        "expected a flags-clobber finding at {unlinked:#x}:\n{}",
        report.render_text()
    );
}
