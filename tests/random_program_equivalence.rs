//! Randomized equivalence test: for *randomly generated* guest programs,
//! translated execution is observationally equivalent to native execution
//! under every mechanism configuration.
//!
//! The structured generator (shared via `strata-testgen::progen`) builds
//! programs that terminate: a counted outer loop whose body is a random
//! mix of straight-line arithmetic, memory traffic, direct calls into a
//! random function table, indirect calls/jumps through that table, and
//! syscall checkpoints. This covers interleavings of mechanisms (e.g. an
//! indirect call whose return site contains another indirect jump) that
//! the hand-written suites miss. Driven by the repo's deterministic
//! [`SmallRng`]: every case is reproducible from its printed seed.

use strata_arch::ArchProfile;
use strata_core::{run_native, RetMechanism, Sdt, SdtConfig};
use strata_stats::rng::SmallRng;
use strata_testgen::progen::{build_program, rand_action, Action};

const FUEL: u64 = 20_000_000;
const CASES: u64 = 24;

fn configs() -> Vec<SdtConfig> {
    let mut fast = SdtConfig::ibtc_inline(64);
    fast.ret = RetMechanism::FastReturn;
    let mut nolink = SdtConfig::sieve(16);
    nolink.link_fragments = false;
    let mut shadow = SdtConfig::ibtc_inline(64);
    shadow.ret = RetMechanism::ShadowStack { depth: 4 };
    vec![
        shadow,
        SdtConfig::reentry(),
        SdtConfig::ibtc_inline(4),
        SdtConfig::ibtc_out_of_line(64),
        SdtConfig::sieve(8),
        SdtConfig::tuned(64, 8),
        fast,
        nolink,
    ]
}

#[test]
fn random_programs_translate_equivalently() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xE9_0000 + case);
        let n_actions = rng.gen_range(1usize..24);
        let actions: Vec<Action> = (0..n_actions).map(|_| rand_action(&mut rng, 6)).collect();
        let iters = rng.gen_range(1u32..30) as u8;

        let program = build_program(&actions, 6, iters);
        let native = run_native(&program, ArchProfile::x86_like(), FUEL)
            .expect("native run of generated program");

        for cfg in configs() {
            let mut sdt = Sdt::new(cfg, &program).expect("sdt constructs");
            let report = sdt
                .run(ArchProfile::x86_like(), FUEL * 40)
                .unwrap_or_else(|e| {
                    panic!(
                        "case {case}: {} failed: {e}\nactions: {actions:?}",
                        cfg.describe()
                    )
                });
            assert_eq!(
                report.checksum,
                native.checksum,
                "case {case}: checksum diverged under {} for actions {actions:?}",
                cfg.describe(),
            );
            assert_eq!(
                sdt.machine().cpu().regs(),
                &native.regs,
                "case {case}: register state diverged under {}",
                cfg.describe()
            );
        }
    }
}
