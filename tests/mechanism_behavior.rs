//! Behavioural properties of the mechanisms themselves — the qualitative
//! claims of the paper, asserted as tests:
//!
//! 1. translator re-entry is the most expensive mechanism on IB-heavy code,
//! 2. IBTC overhead falls as the table grows, then saturates,
//! 3. inlined IBTC beats the shared out-of-line lookup,
//! 4. the return cache beats returns-as-generic-IB on call-heavy code, and
//!    fast returns beat both,
//! 5. the flags-save tax matters on x86-like machines and not on
//!    SPARC-like ones,
//! 6. the best mechanism depends on the architecture (re-entry is
//!    disproportionately catastrophic where traps are expensive).

use strata_arch::ArchProfile;
use strata_core::{run_native, RetMechanism, RunReport, Sdt, SdtConfig};
use strata_workloads::{by_name, Params};

const FUEL: u64 = 400_000_000;

fn run(name: &str, cfg: SdtConfig, profile: ArchProfile) -> RunReport {
    let program = (by_name(name).unwrap().build)(&Params::default());
    let mut sdt = Sdt::new(cfg, &program).expect("sdt constructs");
    sdt.run(profile, FUEL).expect("run completes")
}

fn slowdown(name: &str, cfg: SdtConfig, profile: ArchProfile) -> f64 {
    let program = (by_name(name).unwrap().build)(&Params::default());
    let native = run_native(&program, profile.clone(), FUEL).unwrap();
    run(name, cfg, profile).slowdown(native.total_cycles)
}

#[test]
fn reentry_is_worst_on_interpreter_dispatch() {
    let x86 = ArchProfile::x86_like();
    let reentry = slowdown("perlbmk", SdtConfig::reentry(), x86.clone());
    let ibtc = slowdown("perlbmk", SdtConfig::ibtc_inline(4096), x86.clone());
    let sieve = slowdown("perlbmk", SdtConfig::sieve(4096), x86);
    assert!(
        reentry > 2.0 * ibtc,
        "re-entry ({reentry:.2}x) must dwarf IBTC ({ibtc:.2}x)"
    );
    assert!(
        reentry > sieve,
        "re-entry ({reentry:.2}x) vs sieve ({sieve:.2}x)"
    );
}

#[test]
fn ibtc_overhead_falls_with_size_then_saturates() {
    let x86 = ArchProfile::x86_like();
    let tiny = slowdown("perlbmk", SdtConfig::ibtc_inline(16), x86.clone());
    let small = slowdown("perlbmk", SdtConfig::ibtc_inline(256), x86.clone());
    let big = slowdown("perlbmk", SdtConfig::ibtc_inline(4096), x86.clone());
    let huge = slowdown("perlbmk", SdtConfig::ibtc_inline(65536), x86);
    assert!(tiny > small, "{tiny:.2} > {small:.2}");
    assert!(small >= big, "{small:.2} >= {big:.2}");
    // Saturation: quadrupling past the working set buys almost nothing.
    assert!((big - huge).abs() / big < 0.10, "{big:.3} vs {huge:.3}");
}

#[test]
fn ibtc_miss_rate_decreases_monotonically_with_size() {
    let x86 = ArchProfile::x86_like();
    let mut last = f64::INFINITY;
    for entries in [16u32, 64, 256, 1024, 4096] {
        let r = run("gcc", SdtConfig::ibtc_inline(entries), x86.clone());
        let miss = 1.0 - r.mech.ib_hit_rate();
        assert!(
            miss <= last + 1e-9,
            "miss rate rose from {last:.4} to {miss:.4} at {entries} entries"
        );
        last = miss;
    }
}

#[test]
fn inline_beats_out_of_line() {
    let x86 = ArchProfile::x86_like();
    let inline = slowdown("perlbmk", SdtConfig::ibtc_inline(4096), x86.clone());
    let outline = slowdown("perlbmk", SdtConfig::ibtc_out_of_line(4096), x86);
    assert!(
        inline < outline,
        "inline ({inline:.3}x) must beat out-of-line ({outline:.3}x)"
    );
}

#[test]
fn return_mechanisms_rank_as_expected() {
    // crafty is call/return dominated: returns-as-IB < return cache <
    // fast returns, in overhead order.
    let x86 = ArchProfile::x86_like();
    let as_ib_inline = slowdown("crafty", SdtConfig::ibtc_inline(4096), x86.clone());
    let as_ib_outline = slowdown("crafty", SdtConfig::ibtc_out_of_line(4096), x86.clone());
    let rc = slowdown("crafty", SdtConfig::tuned(4096, 2048), x86.clone());
    let mut fast_cfg = SdtConfig::ibtc_inline(4096);
    fast_cfg.ret = RetMechanism::FastReturn;
    let fast = slowdown("crafty", fast_cfg, x86);
    assert!(
        fast < rc,
        "fast returns ({fast:.3}x) must beat the return cache ({rc:.3}x)"
    );
    assert!(
        fast < as_ib_inline,
        "fast returns ({fast:.3}x) vs returns-as-IB ({as_ib_inline:.3}x)"
    );
    // The return cache clearly beats routing returns through the shared
    // out-of-line lookup (the paper's comparison point) and stays within a
    // few percent of the fully inlined IBTC on a RISC guest, where its
    // verification prologue costs the same constant-load it saves.
    assert!(
        rc < as_ib_outline,
        "return cache ({rc:.3}x) must beat out-of-line returns-as-IB ({as_ib_outline:.3}x)"
    );
    assert!(
        rc < as_ib_inline * 1.10,
        "return cache ({rc:.3}x) must stay near inline returns-as-IB ({as_ib_inline:.3}x)"
    );
}

#[test]
fn return_cache_verification_catches_mismatches() {
    // parser's nested returns create hash conflicts in a tiny return
    // cache; the verification prologue must keep results correct while
    // misses stay visible in the stats.
    let program = (by_name("parser").unwrap().build)(&Params::default());
    let native = run_native(&program, ArchProfile::x86_like(), FUEL).unwrap();
    let mut sdt = Sdt::new(SdtConfig::tuned(1024, 4), &program).unwrap();
    let report = sdt.run(ArchProfile::x86_like(), FUEL).unwrap();
    assert_eq!(
        report.checksum, native.checksum,
        "rc conflicts must not corrupt"
    );
    assert!(report.mech.rc_misses > 0, "a 4-entry rc must conflict");
    let big = Sdt::new(SdtConfig::tuned(1024, 4096), &program)
        .unwrap()
        .run(ArchProfile::x86_like(), FUEL)
        .unwrap();
    assert!(big.mech.rc_misses < report.mech.rc_misses);
}

#[test]
fn flags_tax_is_architecture_dependent() {
    let cheap = |profile: ArchProfile| {
        let with = slowdown("perlbmk", SdtConfig::ibtc_inline(4096), profile.clone());
        let mut cfg = SdtConfig::ibtc_inline(4096);
        cfg.flags = strata_core::FlagsPolicy::None;
        let without = slowdown("perlbmk", cfg, profile);
        with / without
    };
    let x86_ratio = cheap(ArchProfile::x86_like());
    let sparc_ratio = cheap(ArchProfile::sparc_like());
    assert!(
        x86_ratio > sparc_ratio,
        "flags saving must cost relatively more on x86-like \
         ({x86_ratio:.3} vs {sparc_ratio:.3})"
    );
}

#[test]
fn reentry_penalty_explodes_where_traps_are_expensive() {
    // The cross-architecture headline: mechanism costs are not portable.
    // SPARC-like traps cost 700 cycles vs 300 on x86-like, so baseline
    // re-entry is relatively worse there.
    let x86_re = slowdown("eon", SdtConfig::reentry(), ArchProfile::x86_like());
    let x86_ibtc = slowdown("eon", SdtConfig::ibtc_inline(4096), ArchProfile::x86_like());
    let sparc_re = slowdown("eon", SdtConfig::reentry(), ArchProfile::sparc_like());
    let sparc_ibtc = slowdown(
        "eon",
        SdtConfig::ibtc_inline(4096),
        ArchProfile::sparc_like(),
    );
    let x86_benefit = x86_re / x86_ibtc;
    let sparc_benefit = sparc_re / sparc_ibtc;
    assert!(
        sparc_benefit > x86_benefit,
        "IBTC must pay off more on the trap-expensive machine \
         ({sparc_benefit:.2} vs {x86_benefit:.2})"
    );
}

#[test]
fn overhead_attribution_accounts_for_every_cycle() {
    let r = run("gcc", SdtConfig::ibtc_inline(1024), ArchProfile::x86_like());
    let bucketed: u64 = r.cycles_by_origin.iter().sum();
    assert_eq!(
        bucketed + r.translator_cycles,
        r.total_cycles,
        "origin buckets + translator must equal the total"
    );
    assert!(r.cycles_by_origin[0] > 0, "app cycles");
    assert!(r.overhead_cycles() > 0);
}

#[test]
fn sieve_chains_grow_with_fewer_buckets() {
    let small = run("perlbmk", SdtConfig::sieve(4), ArchProfile::x86_like());
    let large = run("perlbmk", SdtConfig::sieve(4096), ArchProfile::x86_like());
    assert!(small.mech.sieve_max_chain > large.mech.sieve_max_chain);
    assert!(small.mech.sieve_mean_chain > large.mech.sieve_mean_chain);
    assert_eq!(
        small.checksum, large.checksum,
        "bucket count is performance-only"
    );
}

#[test]
fn ideal_profile_reduces_slowdown_to_instruction_ratio() {
    // Under ArchProfile::ideal() every instruction costs exactly one cycle
    // and nothing else is charged, so a report's cycles equal its retired
    // instructions — the analytic anchor for interpreting the cost models.
    let report = run("gcc", SdtConfig::ibtc_inline(1024), ArchProfile::ideal());
    assert_eq!(report.total_cycles, report.instructions);
    let program = (by_name("gcc").unwrap().build)(&Params::default());
    let native = run_native(&program, ArchProfile::ideal(), FUEL).unwrap();
    assert_eq!(native.total_cycles, native.instructions);
    // The instruction-count ratio bounds all cost-model slowdowns from
    // below on this benchmark (penalties only amplify dispatch overhead).
    let ratio = report.slowdown(native.total_cycles);
    let x86 = slowdown("gcc", SdtConfig::ibtc_inline(1024), ArchProfile::x86_like());
    assert!(ratio > 1.0 && ratio < x86, "{ratio:.3} vs {x86:.3}");
}
