//! Quickstart: assemble a small guest program, run it natively, run it
//! under the software dynamic translator, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use strata_lab::arch::ArchProfile;
use strata_lab::asm::assemble;
use strata_lab::core::{run_native, Origin, Sdt, SdtConfig};
use strata_lab::machine::{layout, Program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy "virtual machine" loop: dispatch through a jump table 10 000
    // times — the kind of code that makes SDTs sweat.
    let src = format!(
        r"
        li r10, {data}
        li r1, case_a
        sw r1, 0(r10)
        li r1, case_b
        sw r1, 4(r10)
        li r5, 10000
        li r4, 0
    top:
        andi r7, r5, 1
        slli r7, r7, 2
        add r7, r7, r10
        lw r7, 0(r7)
        jr r7                   ; indirect jump, alternating targets
    case_a:
        addi r4, r4, 3
        jmp next
    case_b:
        addi r4, r4, 7
    next:
        addi r5, r5, -1
        cmpi r5, 0
        bne top
        trap 0x1                ; fold r4 into the checksum
        halt
        ",
        data = layout::APP_DATA_BASE
    );
    let program = Program::new("quickstart", assemble(layout::APP_BASE, &src)?, Vec::new());

    // 1. Native baseline under an x86-like cost model.
    let profile = ArchProfile::x86_like();
    let native = run_native(&program, profile.clone(), 10_000_000)?;
    println!(
        "native    : {:>10} cycles (checksum {:#010x})",
        native.total_cycles, native.checksum
    );

    // 2. The same program under translation, three ways.
    for cfg in [
        SdtConfig::reentry(),
        SdtConfig::ibtc_inline(512),
        SdtConfig::sieve(512),
    ] {
        let mut sdt = Sdt::new(cfg, &program)?;
        let report = sdt.run(profile.clone(), 100_000_000)?;
        assert_eq!(
            report.checksum, native.checksum,
            "translation must be transparent"
        );
        println!(
            "{:<28}: {:>10} cycles = {:.2}x native  (dispatch {:>6.1}%, ctx-switch {:>5.1}%, IB hit rate {:>6.2}%)",
            report.config,
            report.total_cycles,
            report.slowdown(native.total_cycles),
            report.cycles_for(Origin::Dispatch) as f64 * 100.0 / report.total_cycles as f64,
            report.cycles_for(Origin::ContextSwitch) as f64 * 100.0 / report.total_cycles as f64,
            report.mech.ib_hit_rate() * 100.0,
        );
    }

    println!("\nEvery indirect branch above was translated through the configured");
    println!("mechanism; swap in SdtConfig::tuned(..) or RetMechanism::FastReturn and");
    println!("re-run to explore the rest of the design space from the paper.");
    Ok(())
}
