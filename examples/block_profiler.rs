//! Block profiler: the SDT as an instrumentation platform. Enabling
//! `instrument_blocks` makes the translator inject an execution counter at
//! the top of every fragment; the counting code is real guest
//! instructions, so this example also reports what the instrumentation
//! itself cost — the question any SDT-based tool user asks first.
//!
//! ```text
//! cargo run --release --example block_profiler [workload]
//! ```

use strata_lab::arch::ArchProfile;
use strata_lab::core::{Origin, Sdt, SdtConfig};
use strata_lab::stats::Table;
use strata_lab::workloads::{by_name, Params};

const FUEL: u64 = 2_000_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let spec = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`; try: gcc, perlbmk, crafty, ...");
        std::process::exit(2);
    });
    let program = (spec.build)(&Params::default());
    let profile = ArchProfile::x86_like();

    // Uninstrumented run for the overhead comparison.
    let plain = Sdt::new(SdtConfig::ibtc_inline(4096), &program)?.run(profile.clone(), FUEL)?;

    // Instrumented run.
    let mut cfg = SdtConfig::ibtc_inline(4096);
    cfg.instrument_blocks = true;
    let mut sdt = Sdt::new(cfg, &program)?;
    let report = sdt.run(profile, FUEL)?;
    assert_eq!(
        report.checksum, plain.checksum,
        "instrumentation must be transparent"
    );

    let blocks = sdt.block_profile();
    let total_execs: u64 = blocks.iter().map(|&(_, c)| c).sum();
    let mut t = Table::new(
        format!(
            "hottest basic blocks in `{name}` ({} blocks, {} executions)",
            blocks.len(),
            total_execs
        ),
        &["app address", "executions", "share"],
    );
    for &(addr, count) in blocks.iter().take(12) {
        t.row([
            format!("{addr:#x}"),
            count.to_string(),
            format!("{:.1}%", count as f64 * 100.0 / total_execs as f64),
        ]);
    }
    println!("{}", t.render_text());

    let overhead = report.total_cycles as f64 / plain.total_cycles as f64 - 1.0;
    println!(
        "instrumentation overhead: {:+.1}% total cycles ({} cycles attributed to counters)",
        overhead * 100.0,
        report.cycles_for(Origin::Instrumentation),
    );
    println!("Every count was collected by emitted guest code — the same path a");
    println!("production SDT-based profiler (the paper's motivating use case) takes.");
    Ok(())
}
