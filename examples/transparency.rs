//! Transparency demo: fast returns push *translated* return addresses, so
//! a program that inspects its own stack observes fragment-cache
//! addresses instead of its own. The return cache keeps application
//! addresses on the stack and stays transparent. This is the exact
//! trade-off the paper calls out when recommending fast returns only
//! where transparency can be relinquished.
//!
//! ```text
//! cargo run --release --example transparency
//! ```

use strata_lab::arch::ArchProfile;
use strata_lab::asm::assemble;
use strata_lab::core::{run_native, RetMechanism, Sdt, SdtConfig};
use strata_lab::machine::{layout, Program};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The function `snoop` reads its own return address off the stack and
    // folds it into the checksum — introspection that only works if the
    // SDT keeps application addresses on the application stack.
    let src = r"
        call snoop
        call snoop
        halt
    snoop:
        lw r4, 0(sp)        ; read my own return address
        trap 0x1            ; checksum it
        ret
    ";
    let program = Program::new("snoop", assemble(layout::APP_BASE, src)?, Vec::new());
    let profile = ArchProfile::x86_like();
    let native = run_native(&program, profile.clone(), 100_000)?;
    println!("native checksum                : {:#010x}", native.checksum);

    let mut rc = SdtConfig::ibtc_inline(256);
    rc.ret = RetMechanism::ReturnCache { entries: 64 };
    let rc_report = Sdt::new(rc, &program)?.run(profile.clone(), 1_000_000)?;
    println!(
        "return cache checksum          : {:#010x}  (transparent: {})",
        rc_report.checksum,
        rc_report.checksum == native.checksum
    );
    assert_eq!(rc_report.checksum, native.checksum);

    let mut fast = SdtConfig::ibtc_inline(256);
    fast.ret = RetMechanism::FastReturn;
    let fast_report = Sdt::new(fast, &program)?.run(profile, 1_000_000)?;
    println!(
        "fast returns checksum          : {:#010x}  (transparent: {})",
        fast_report.checksum,
        fast_report.checksum == native.checksum
    );
    assert_ne!(
        fast_report.checksum, native.checksum,
        "fast returns must expose fragment-cache addresses to this program"
    );

    println!("\nThe fast-return run produced a different checksum because `snoop`");
    println!(
        "observed a fragment-cache address (≥ {:#x}) where it expected its",
        layout::CACHE_BASE
    );
    println!("application return address — the transparency violation that makes");
    println!("fast returns unsafe for programs that inspect their own stacks.");
    Ok(())
}
