//! Indirect-branch profiler: uses the execution-observer interface (the
//! same hook the SDT's cost attribution uses) to profile where a program's
//! indirect branches live and how polymorphic each site is — the kind of
//! program instrumentation the paper lists as a primary SDT use case, and
//! exactly the data an SDT implementer needs to size an IBTC or sieve.
//!
//! ```text
//! cargo run --release --example ib_profiler [workload]
//! ```

use std::collections::{BTreeMap, HashSet};

use strata_lab::isa::ControlKind;
use strata_lab::machine::syscall::SyscallState;
use strata_lab::machine::{layout, ExecutionObserver, Machine, RetireEvent, StepOutcome};
use strata_lab::stats::Table;
use strata_lab::workloads::{by_name, Params};

/// Per-site indirect-branch statistics.
#[derive(Default)]
struct SiteStats {
    executions: u64,
    targets: HashSet<u32>,
    kind: &'static str,
}

#[derive(Default)]
struct IbProfiler {
    sites: BTreeMap<u32, SiteStats>,
}

impl ExecutionObserver for IbProfiler {
    fn on_retire(&mut self, ev: &RetireEvent) {
        let kind = match ev.control.kind {
            ControlKind::Indirect => "jump",
            ControlKind::Call if ev.control.indirect => "call",
            ControlKind::Return => "return",
            _ => return,
        };
        let site = self.sites.entry(ev.pc).or_default();
        site.executions += 1;
        site.targets.insert(ev.control.target);
        site.kind = kind;
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "perlbmk".to_string());
    let spec = by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown workload `{name}`; try: perlbmk, eon, gcc, crafty, ...");
        std::process::exit(2);
    });
    let program = (spec.build)(&Params::default());

    let mut machine = Machine::new(layout::DEFAULT_MEM_BYTES);
    program.load(&mut machine)?;
    let mut profiler = IbProfiler::default();
    let mut syscalls = SyscallState::new();
    loop {
        match machine.run(&mut profiler, 2_000_000_000)? {
            StepOutcome::Halted => break,
            StepOutcome::Trap(code) => {
                syscalls.handle(code, &machine);
            }
            StepOutcome::Running => unreachable!(),
        }
    }

    let mut sites: Vec<(&u32, &SiteStats)> = profiler.sites.iter().collect();
    sites.sort_by_key(|(_, s)| std::cmp::Reverse(s.executions));

    let mut t = Table::new(
        format!("hottest indirect-branch sites in `{name}`"),
        &[
            "site pc",
            "kind",
            "executions",
            "distinct targets",
            "polymorphic?",
        ],
    );
    for (pc, s) in sites.iter().take(10) {
        t.row([
            format!("{pc:#x}"),
            s.kind.to_string(),
            s.executions.to_string(),
            s.targets.len().to_string(),
            if s.targets.len() > 1 { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", t.render_text());

    let total_targets: usize = sites.iter().map(|(_, s)| s.targets.len()).sum();
    println!(
        "total IB sites: {}, total distinct dynamic targets: {}",
        sites.len(),
        total_targets
    );
    println!(
        "sizing hint: a shared IBTC needs roughly {} entries to avoid capacity\n\
         misses (next power of two above the distinct-target count).",
        (total_targets.max(1)).next_power_of_two()
    );
    Ok(())
}
