//! Interpreter showdown: the `perlbmk` stand-in (a bytecode interpreter,
//! the worst case for SDT indirect-branch handling) under every major
//! mechanism, on two architecture profiles.
//!
//! ```text
//! cargo run --release --example interpreter_showdown
//! ```

use strata_lab::arch::ArchProfile;
use strata_lab::core::{run_native, RetMechanism, Sdt, SdtConfig};
use strata_lab::stats::Table;
use strata_lab::workloads::{by_name, Params};

const FUEL: u64 = 2_000_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = (by_name("perlbmk").expect("registered").build)(&Params::default());

    let mut fast = SdtConfig::ibtc_inline(4096);
    fast.ret = RetMechanism::FastReturn;
    let configs = [
        ("translator re-entry", SdtConfig::reentry()),
        ("IBTC out-of-line 4096", SdtConfig::ibtc_out_of_line(4096)),
        ("IBTC inline 4096", SdtConfig::ibtc_inline(4096)),
        ("sieve 4096", SdtConfig::sieve(4096)),
        ("IBTC + return cache", SdtConfig::tuned(4096, 1024)),
        ("IBTC + fast returns", fast),
    ];

    let mut table = Table::new(
        "perlbmk (bytecode interpreter) under every mechanism",
        &["mechanism", "x86-like", "sparc-like"],
    );
    for (label, cfg) in configs {
        let mut row = vec![label.to_string()];
        for profile in [ArchProfile::x86_like(), ArchProfile::sparc_like()] {
            let native = run_native(&program, profile.clone(), FUEL)?;
            let mut sdt = Sdt::new(cfg, &program)?;
            let report = sdt.run(profile, FUEL)?;
            assert_eq!(report.checksum, native.checksum);
            row.push(format!("{:.2}x", report.slowdown(native.total_cycles)));
        }
        table.row(row);
    }
    println!("{}", table.render_text());
    println!("An interpreter executes one indirect jump per bytecode, so the gap");
    println!("between re-entry and any in-cache mechanism is enormous — and the");
    println!("relative ranking of the in-cache mechanisms shifts with the");
    println!("architecture profile, the paper's cross-architecture finding.");
    Ok(())
}
