//! # strata-lab — reproduction of “Evaluating Indirect Branch Handling
//! Mechanisms in Software Dynamic Translation Systems” (CGO 2007)
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`isa`] — the SimRISC guest instruction set,
//! * [`asm`] — assembler and code builder,
//! * [`machine`] — the simulated machine (memory, CPU, observers),
//! * [`arch`] — microarchitecture cost models (x86-like, SPARC-like,
//!   MIPS-like),
//! * [`core`] — the software dynamic translator with pluggable
//!   indirect-branch handling mechanisms (the paper's subject),
//! * [`analysis`] — `strata verify`: static CFG + dataflow checker over
//!   the emitted fragment cache,
//! * [`workloads`] — SPEC CINT2000 stand-in programs,
//! * [`stats`] — tables/series for the experiment binaries,
//! * [`expt`] — the parallel experiment orchestrator behind `strata bench`,
//! * [`trace`] — compressed retire-trace recording plus BBV/SimPoint
//!   phase analysis, the substrate of `strata trace` and `bench --sampled`,
//! * [`fleet`] — the coordinator/worker pair behind `strata fleet`, for
//!   spreading a suite run across machines over TCP.
//!
//! See `examples/quickstart.rs` for a end-to-end tour and the
//! `strata-bench` crate for the binaries that regenerate each table and
//! figure of the paper.

pub mod cli;

pub use strata_analysis as analysis;
pub use strata_arch as arch;
pub use strata_asm as asm;
pub use strata_core as core;
pub use strata_expt as expt;
pub use strata_fleet as fleet;
pub use strata_isa as isa;
pub use strata_machine as machine;
pub use strata_stats as stats;
pub use strata_trace as trace;
pub use strata_workloads as workloads;
