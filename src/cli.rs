//! Parsing helpers for the `strata` command-line driver, kept in the
//! library so they are unit-testable.

use strata_arch::PredictorSpec;
use strata_core::{
    ClassPolicy, FlagsPolicy, IbMechanism, IbtcPlacement, IbtcScope, RetMechanism, SdtConfig,
};
use strata_machine::{ExecTier, TierConfig};

/// Returns the value following `flag` in `args`, if present.
pub fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses a `--shard` spec of the form `i/n` into `(index, count)` with
/// `index < count` and `count >= 1`. Both sides must be plain decimal
/// digits — shard specs are copied between machines, so decorated forms
/// (`+1/2`, ` 1/2`) that `u32::parse` would tolerate are rejected too.
///
/// # Errors
///
/// Returns a human-readable message for malformed specs (`3`, `a/b`,
/// `1/0`, `+1/2`) and out-of-range indices (`2/2`).
pub fn parse_shard(spec: &str) -> Result<(u32, u32), String> {
    let (i, n) = spec
        .split_once('/')
        .ok_or_else(|| format!("bad --shard `{spec}` (expected `i/n`, e.g. `0/4`)"))?;
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    let index: u32 = if digits(i) { i.parse().ok() } else { None }
        .ok_or_else(|| format!("bad shard index `{i}` in `{spec}`"))?;
    let count: u32 = if digits(n) { n.parse().ok() } else { None }
        .ok_or_else(|| format!("bad shard count `{n}` in `{spec}`"))?;
    if count == 0 {
        return Err(format!("shard count must be at least 1 in `{spec}`"));
    }
    if index >= count {
        return Err(format!(
            "shard index {index} out of range for {count} shard(s)"
        ));
    }
    Ok((index, count))
}

/// Resolves the execution-tier flags: `--tier interp|threaded[:threshold]`
/// plus the standalone `--tier-threshold N` knob (which implies
/// `--tier threaded`). Returns `None` when neither flag is present so
/// callers can fall through to their own default (usually the `STRATA_TIER`
/// environment variable, then the interpreter).
///
/// # Errors
///
/// Returns a caret diagnostic pointing at the offending token (the same
/// shape as `--ib-policy` and `--predictor` errors) for unknown tier
/// names, malformed thresholds, and the contradictory
/// `--tier interp --tier-threshold N`.
pub fn parse_tier(args: &[String]) -> Result<Option<ExecTier>, String> {
    let mut tier = match parse_flag(args, "--tier") {
        Some(spec) => match ExecTier::parse(&spec) {
            Ok(t) => Some(t),
            Err(_) => {
                return Err(match spec.strip_prefix("threaded:") {
                    Some(n) => point_at(
                        &spec,
                        "threaded:".len(),
                        n.len(),
                        format!("bad --tier threshold `{n}` (expected a number, e.g. threaded:32)"),
                    ),
                    None => point_at(
                        &spec,
                        0,
                        spec.len(),
                        format!("unknown execution tier `{spec}` (interp|threaded[:threshold])"),
                    ),
                });
            }
        },
        None => None,
    };
    if let Some(raw) = parse_flag(args, "--tier-threshold") {
        let threshold: u32 = raw.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
            point_at(
                &raw,
                0,
                raw.len(),
                format!("bad --tier-threshold `{raw}` (expected an integer >= 1)"),
            )
        })?;
        match &mut tier {
            Some(ExecTier::Threaded(cfg)) => cfg.threshold = threshold,
            Some(ExecTier::Interp) => {
                return Err(point_at(
                    "interp",
                    0,
                    "interp".len(),
                    "--tier-threshold needs --tier threaded".into(),
                ));
            }
            None => {
                tier = Some(ExecTier::Threaded(TierConfig {
                    threshold,
                    ..TierConfig::default()
                }));
            }
        }
    }
    Ok(tier)
}

/// Parses a CLI configuration spec into an [`SdtConfig`].
///
/// Specs: `reentry`, `ibtc:<entries>`, `ibtc-outline:<entries>`,
/// `ibtc-persite:<entries>`, `sieve:<buckets>`, `tuned:<ibtc>,<rc>`,
/// `fastret:<ibtc>`, `shadow:<ibtc>,<depth>`, with optional `+noflags` /
/// `+nolink` modifiers.
///
/// # Errors
///
/// Returns a human-readable message for unknown kinds, malformed sizes, and
/// unknown modifiers. (Range validation happens later in
/// [`SdtConfig::validate`].)
pub fn parse_config(spec: &str) -> Result<SdtConfig, String> {
    let mut parts = spec.split('+');
    let head = parts.next().unwrap_or_default();
    let (kind, sizes) = match head.split_once(':') {
        Some((k, s)) => (k, s),
        None => (head, ""),
    };
    let size = |s: &str| -> Result<u32, String> {
        s.parse()
            .map_err(|_| format!("bad size `{s}` in config `{spec}`"))
    };
    let mut cfg = match kind {
        "reentry" => SdtConfig::reentry(),
        "ibtc" => SdtConfig::ibtc_inline(size(sizes)?),
        "ibtc-outline" => SdtConfig::ibtc_out_of_line(size(sizes)?),
        "ibtc-persite" => SdtConfig {
            ib: IbMechanism::Ibtc {
                entries: size(sizes)?,
                scope: IbtcScope::PerSite,
                placement: IbtcPlacement::Inline,
            },
            ..SdtConfig::ibtc_inline(64)
        },
        "sieve" => SdtConfig::sieve(size(sizes)?),
        "tuned" => {
            let (a, b) = sizes
                .split_once(',')
                .ok_or_else(|| format!("tuned needs `<ibtc>,<rc>`, got `{sizes}`"))?;
            SdtConfig::tuned(size(a)?, size(b)?)
        }
        "fastret" => {
            let mut c = SdtConfig::ibtc_inline(size(sizes)?);
            c.ret = RetMechanism::FastReturn;
            c
        }
        "shadow" => {
            let (a, b) = sizes
                .split_once(',')
                .ok_or_else(|| format!("shadow needs `<ibtc>,<depth>`, got `{sizes}`"))?;
            let mut c = SdtConfig::ibtc_inline(size(a)?);
            c.ret = RetMechanism::ShadowStack { depth: size(b)? };
            c
        }
        other => return Err(format!("unknown config kind `{other}`")),
    };
    for modifier in parts {
        match modifier {
            "noflags" => cfg.flags = FlagsPolicy::None,
            "nolink" => cfg.link_fragments = false,
            other => return Err(format!("unknown config modifier `+{other}`")),
        }
    }
    Ok(cfg)
}

/// Renders a parse error pointing at the offending token of `spec`:
///
/// ```text
/// bad associativity `x` (only x2)
///   jump=ibtc:512x,call=sieve:64
///                ^
/// ```
fn point_at(spec: &str, start: usize, len: usize, msg: String) -> String {
    let start = start.min(spec.len());
    let len = len.clamp(1, (spec.len() - start).max(1));
    format!(
        "{msg}\n  {spec}\n  {blank}{carets}",
        blank = " ".repeat(start),
        carets = "^".repeat(len)
    )
}

/// Parses an `--ib-policy` spec and applies it to `cfg`.
///
/// The spec is a comma-separated list of `class=strategy` assignments:
///
/// ```text
/// jump=sieve:4096,call=ibtc:512x2,ret=retcache:1024
/// ```
///
/// Classes: `jump`, `call` (indirect-branch strategies) and `ret`
/// (return mechanisms). Jump/call strategies: `inherit`, `reentry`,
/// `ibtc:<entries>[x2]`, `ibtc-outline:<entries>`,
/// `ibtc-persite:<entries>[x2]`, `sieve:<buckets>`,
/// `adaptive[:<ibtc>,<sieve>[,<arity>]]` (defaults `512,1024,8`), and
/// `predictive[:<sieve>,<probation>]` (defaults `1024,64`). Ret
/// mechanisms: `asib`, `retcache:<entries>` (alias `rc:<entries>`),
/// `fastret`, `shadow:<depth>`.
///
/// Commas inside `adaptive:...` / `predictive:...` parameter lists are
/// handled: a segment without `=` continues the previous assignment.
///
/// # Errors
///
/// Returns a multi-line message with a caret line pointing at the
/// offending token — unknown classes or strategies, malformed sizes and
/// associativities, and duplicate class assignments. (Range validation
/// happens later in [`SdtConfig::validate`].)
pub fn parse_policy(spec: &str, cfg: &mut SdtConfig) -> Result<(), String> {
    // Byte ranges of each `class=strategy` assignment in `spec`. A
    // comma-separated segment without `=` continues the previous
    // assignment (adaptive's parameter list contains commas).
    let mut assignments: Vec<(usize, usize)> = Vec::new();
    let mut cursor = 0usize;
    for segment in spec.split(',') {
        let (start, end) = (cursor, cursor + segment.len());
        cursor = end + 1;
        if segment.contains('=') {
            assignments.push((start, end));
        } else if let Some(last) = assignments.last_mut() {
            last.1 = end;
        } else {
            return Err(point_at(
                spec,
                start,
                segment.len(),
                "bad --ib-policy (expected `class=strategy,...`)".into(),
            ));
        }
    }
    let mut seen = [false; 3];
    for &(start, end) in &assignments {
        let raw = &spec[start..end];
        let lead = raw.len() - raw.trim_start().len();
        let a_start = start + lead;
        let assignment = raw.trim();
        let Some((class, strategy)) = assignment.split_once('=') else {
            return Err(point_at(
                spec,
                a_start,
                assignment.len(),
                format!("bad policy assignment `{assignment}`"),
            ));
        };
        let strat_start = a_start + class.len() + 1;
        let slot = match class {
            "jump" => 0,
            "call" => 1,
            "ret" => 2,
            other => {
                return Err(point_at(
                    spec,
                    a_start,
                    class.len(),
                    format!("unknown policy class `{other}` (jump|call|ret)"),
                ))
            }
        };
        if seen[slot] {
            return Err(point_at(
                spec,
                a_start,
                class.len(),
                format!("class `{class}` assigned twice"),
            ));
        }
        seen[slot] = true;
        if slot == 2 {
            cfg.ret = parse_ret_strategy(strategy, spec, strat_start)?;
        } else {
            let policy = parse_class_strategy(strategy, spec, strat_start)?;
            match slot {
                0 => cfg.policy.jump = policy,
                _ => cfg.policy.call = policy,
            }
        }
    }
    Ok(())
}

/// Parses the `strategy` half of a jump/call assignment. `at` is the
/// strategy's byte offset in `spec`, used to anchor caret diagnostics.
fn parse_class_strategy(strategy: &str, spec: &str, at: usize) -> Result<ClassPolicy, String> {
    let (kind, sizes) = match strategy.split_once(':') {
        Some((k, s)) => (k, s),
        None => (strategy, ""),
    };
    let sizes_at = at + kind.len() + 1;
    let size = |s: &str, s_at: usize| -> Result<u32, String> {
        s.trim()
            .parse()
            .map_err(|_| point_at(spec, s_at, s.len(), format!("bad size `{}`", s.trim())))
    };
    // `<entries>` with an optional `x2` associativity suffix.
    let sized_ways = |s: &str, s_at: usize| -> Result<(u32, u8), String> {
        match s.split_once('x') {
            Some((n, "2")) => Ok((size(n, s_at)?, 2)),
            Some((n, w)) => Err(point_at(
                spec,
                s_at + n.len(),
                w.len() + 1,
                format!("bad associativity `x{w}` (only x2)"),
            )),
            None => Ok((size(s, s_at)?, 1)),
        }
    };
    let fixed = |mech: IbMechanism, ways: u8| ClassPolicy::Fixed { mech, ways };
    Ok(match kind {
        "inherit" => ClassPolicy::Inherit,
        "reentry" => fixed(IbMechanism::Reentry, 1),
        "ibtc" => {
            let (entries, ways) = sized_ways(sizes, sizes_at)?;
            fixed(
                IbMechanism::Ibtc {
                    entries,
                    scope: IbtcScope::Shared,
                    placement: IbtcPlacement::Inline,
                },
                ways,
            )
        }
        "ibtc-outline" => fixed(
            IbMechanism::Ibtc {
                entries: size(sizes, sizes_at)?,
                scope: IbtcScope::Shared,
                placement: IbtcPlacement::OutOfLine,
            },
            1,
        ),
        "ibtc-persite" => {
            let (entries, ways) = sized_ways(sizes, sizes_at)?;
            fixed(
                IbMechanism::Ibtc {
                    entries,
                    scope: IbtcScope::PerSite,
                    placement: IbtcPlacement::Inline,
                },
                ways,
            )
        }
        "sieve" => fixed(
            IbMechanism::Sieve {
                buckets: size(sizes, sizes_at)?,
            },
            1,
        ),
        "adaptive" => {
            let (ibtc_entries, sieve_buckets, sieve_arity) = if sizes.is_empty() {
                (512, 1024, 8)
            } else {
                // Track each parameter's offset for precise carets.
                let mut parts = Vec::new();
                let mut p_at = sizes_at;
                for p in sizes.split(',') {
                    parts.push((p, p_at));
                    p_at += p.len() + 1;
                }
                if parts.len() > 3 {
                    return Err(point_at(
                        spec,
                        parts[3].1,
                        sizes_at + sizes.len() - parts[3].1,
                        "too many adaptive parameters (at most `<ibtc>,<sieve>,<arity>`)".into(),
                    ));
                }
                let i = size(parts[0].0, parts[0].1)?;
                let Some(&(s, s_at)) = parts.get(1) else {
                    return Err(point_at(
                        spec,
                        sizes_at,
                        sizes.len(),
                        "adaptive needs `<ibtc>,<sieve>[,<arity>]`".into(),
                    ));
                };
                let s = size(s, s_at)?;
                let a = match parts.get(2) {
                    Some(&(a, a_at)) => size(a, a_at)?,
                    None => 8,
                };
                (i, s, a)
            };
            ClassPolicy::Adaptive {
                ibtc_entries,
                sieve_buckets,
                sieve_arity,
            }
        }
        "predictive" => {
            let (sieve_buckets, probation) = if sizes.is_empty() {
                (1024, 64)
            } else {
                let mut parts = Vec::new();
                let mut p_at = sizes_at;
                for p in sizes.split(',') {
                    parts.push((p, p_at));
                    p_at += p.len() + 1;
                }
                if parts.len() > 2 {
                    return Err(point_at(
                        spec,
                        parts[2].1,
                        sizes_at + sizes.len() - parts[2].1,
                        "too many predictive parameters (at most `<sieve>,<probation>`)".into(),
                    ));
                }
                let s = size(parts[0].0, parts[0].1)?;
                let Some(&(p, p_at)) = parts.get(1) else {
                    return Err(point_at(
                        spec,
                        sizes_at,
                        sizes.len(),
                        "predictive needs `<sieve>,<probation>`".into(),
                    ));
                };
                (s, size(p, p_at)?)
            };
            ClassPolicy::Predictive {
                sieve_buckets,
                probation,
            }
        }
        other => {
            return Err(point_at(
                spec,
                at,
                kind.len(),
                format!("unknown class strategy `{other}`"),
            ))
        }
    })
}

/// Parses a `--predictor` spec into a [`PredictorSpec`]. The grammar
/// lives in [`PredictorSpec::parse`]; this wrapper renders its
/// span-carrying errors with the same caret style as `--ib-policy`:
///
/// ```text
/// bad --predictor: sets `12` must be a power of two
///   btb:12x4
///       ^^
/// ```
///
/// # Errors
///
/// Returns a multi-line message with a caret line pointing at the
/// offending token.
pub fn parse_predictor(spec: &str) -> Result<PredictorSpec, String> {
    PredictorSpec::parse(spec)
        .map_err(|e| point_at(spec, e.start, e.len, format!("bad --predictor: {}", e.msg)))
}

/// Parses the `strategy` half of a `ret=` assignment; `at` anchors carets.
fn parse_ret_strategy(strategy: &str, spec: &str, at: usize) -> Result<RetMechanism, String> {
    let (kind, sizes) = match strategy.split_once(':') {
        Some((k, s)) => (k, s),
        None => (strategy, ""),
    };
    let sizes_at = at + kind.len() + 1;
    let size = |s: &str| -> Result<u32, String> {
        s.trim()
            .parse()
            .map_err(|_| point_at(spec, sizes_at, s.len(), format!("bad size `{}`", s.trim())))
    };
    Ok(match kind {
        "asib" => RetMechanism::AsIb,
        "retcache" | "rc" => RetMechanism::ReturnCache {
            entries: size(sizes)?,
        },
        "fastret" => RetMechanism::FastReturn,
        "shadow" => RetMechanism::ShadowStack {
            depth: size(sizes)?,
        },
        other => {
            return Err(point_at(
                spec,
                at,
                kind.len(),
                format!("unknown ret strategy `{other}`"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_roundtrip_through_describe() {
        for (spec, described) in [
            ("reentry", "reentry"),
            ("ibtc:4096", "ibtc(4096,shared,inline)"),
            ("ibtc-outline:256", "ibtc(256,shared,outline)"),
            ("ibtc-persite:64", "ibtc(64,per-site,inline)"),
            ("sieve:1024", "sieve(1024)"),
            ("tuned:4096,512", "ibtc(4096,shared,inline)+rc(512)"),
            ("fastret:256", "ibtc(256,shared,inline)+fastret"),
            ("shadow:256,64", "ibtc(256,shared,inline)+shadow(64)"),
            ("sieve:64+noflags+nolink", "sieve(64)+noflags+nolink"),
        ] {
            let cfg = parse_config(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(cfg.describe(), described, "{spec}");
            assert!(cfg.validate().is_ok(), "{spec}");
        }
    }

    #[test]
    fn malformed_specs_rejected() {
        for bad in [
            "frob",
            "ibtc:abc",
            "tuned:4096",
            "shadow:256",
            "ibtc:256+wat",
            "",
        ] {
            assert!(parse_config(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn policy_specs_roundtrip_through_describe() {
        for (spec, described) in [
            (
                "jump=sieve:4096,call=ibtc:512x2,ret=retcache:1024",
                "ibtc(4096,shared,inline)+rc(1024)\
                 +jump=sieve(4096)+call=ibtc(512,shared,inline)x2",
            ),
            (
                "jump=adaptive:512,1024,8",
                "ibtc(4096,shared,inline)+jump=adaptive(512,1024,8)",
            ),
            (
                "jump=adaptive",
                "ibtc(4096,shared,inline)+jump=adaptive(512,1024,8)",
            ),
            (
                "call=reentry,ret=fastret",
                "ibtc(4096,shared,inline)+fastret+call=reentry",
            ),
            (
                "jump=ibtc-persite:64,ret=shadow:256",
                "ibtc(4096,shared,inline)+shadow(256)+jump=ibtc(64,per-site,inline)",
            ),
            (
                "jump=inherit,call=inherit,ret=asib",
                "ibtc(4096,shared,inline)",
            ),
            (
                "ret=rc:512,call=adaptive:256,512,4",
                "ibtc(4096,shared,inline)+rc(512)+call=adaptive(256,512,4)",
            ),
            (
                "jump=predictive:2048,128",
                "ibtc(4096,shared,inline)+jump=predictive(2048,128)",
            ),
            (
                "jump=predictive",
                "ibtc(4096,shared,inline)+jump=predictive(1024,64)",
            ),
            (
                "call=predictive:256,32,ret=rc:512",
                "ibtc(4096,shared,inline)+rc(512)+call=predictive(256,32)",
            ),
        ] {
            let mut cfg = SdtConfig::ibtc_inline(4096);
            parse_policy(spec, &mut cfg).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(cfg.describe(), described, "{spec}");
            assert!(cfg.validate().is_ok(), "{spec}: {:?}", cfg.validate());
        }
    }

    #[test]
    fn malformed_policy_specs_rejected() {
        for bad in [
            "",
            "jump",
            "512,1024",
            "frob=sieve:64",
            "jump=frob",
            "jump=sieve:abc",
            "jump=ibtc:512x3",
            "jump=adaptive:512",
            "jump=adaptive:1,2,3,4",
            "jump=sieve:64,jump=sieve:128",
            "ret=sieve:64",
            "ret=frob",
            "jump=predictive:512",
            "jump=predictive:1,2,3",
            "jump=predictive:abc,64",
        ] {
            let mut cfg = SdtConfig::ibtc_inline(4096);
            assert!(
                parse_policy(bad, &mut cfg).is_err(),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn policy_errors_point_at_offending_token() {
        // (spec, expected message fragment, caret column, caret width)
        for (spec, msg, col, width) in [
            ("call=ibtc:512x", "bad associativity `x`", 13, 1),
            ("call=ibtc:512x4", "bad associativity `x4`", 13, 2),
            ("jump=sieve:12kb", "bad size `12kb`", 11, 4),
            ("jump=sieve:64,jump=sieve:128", "assigned twice", 14, 4),
            ("frob=sieve:64", "unknown policy class `frob`", 0, 4),
            ("jump=frob", "unknown class strategy `frob`", 5, 4),
            ("ret=warp", "unknown ret strategy `warp`", 4, 4),
            ("ret=shadow:deep", "bad size `deep`", 11, 4),
            ("512,1024", "expected `class=strategy", 0, 3),
            (
                "jump=adaptive:512,1024,8,9",
                "too many adaptive parameters",
                25,
                1,
            ),
            ("call=adaptive:64,2x,4", "bad size `2x`", 17, 2),
            (
                "jump=predictive:512",
                "predictive needs `<sieve>,<probation>`",
                16,
                3,
            ),
            (
                "jump=predictive:1,2,3",
                "too many predictive parameters",
                20,
                1,
            ),
            ("call=predictive:64,many", "bad size `many`", 19, 4),
        ] {
            let mut cfg = SdtConfig::ibtc_inline(4096);
            let err =
                parse_policy(spec, &mut cfg).expect_err(&format!("`{spec}` must be rejected"));
            let lines: Vec<&str> = err.lines().collect();
            assert!(lines[0].contains(msg), "`{spec}`: {err}");
            assert_eq!(lines[1], format!("  {spec}"), "`{spec}` echoed");
            assert_eq!(
                lines[2],
                format!("  {}{}", " ".repeat(col), "^".repeat(width)),
                "`{spec}` caret must sit under the offending token:\n{err}"
            );
        }
    }

    #[test]
    fn predictor_specs_roundtrip_through_label() {
        for (spec, label) in [
            ("legacy", "legacy"),
            ("none", "none"),
            ("ideal", "ideal"),
            ("btb:512", "btb:512"),
            ("btb:256x4", "btb:256x4"),
            ("ittage", "ittage:4"),
            ("ittage:6", "ittage:6"),
        ] {
            let parsed = parse_predictor(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(parsed.label(), label, "{spec}");
        }
    }

    #[test]
    fn predictor_errors_point_at_offending_token() {
        // (spec, expected message fragment, caret column, caret width) —
        // same diagnostic shape as `--ib-policy` errors above.
        for (spec, msg, col, width) in [
            ("frob", "unknown predictor 'frob'", 0, 4),
            ("legacy:4", "'legacy' takes no argument", 7, 1),
            ("btb", "btb needs a size", 3, 1),
            ("btb:12x4", "btb sets 12 must be a power of two", 4, 2),
            ("btb:256x32", "btb ways 32 must be in 1..=16", 8, 2),
            ("btb:12", "btb entries 12 must be 0 or a power of two", 4, 2),
            ("btb:abc", "must be a number, got 'abc'", 4, 3),
            ("ittage:9", "ittage tables 9 must be in 1..=8", 7, 1),
        ] {
            let err = parse_predictor(spec).expect_err(&format!("`{spec}` must be rejected"));
            let lines: Vec<&str> = err.lines().collect();
            assert!(lines[0].contains(msg), "`{spec}`: {err}");
            assert_eq!(lines[1], format!("  {spec}"), "`{spec}` echoed");
            assert_eq!(
                lines[2],
                format!("  {}{}", " ".repeat(col), "^".repeat(width)),
                "`{spec}` caret must sit under the offending token:\n{err}"
            );
        }
    }

    #[test]
    fn shard_specs() {
        assert_eq!(parse_shard("0/1"), Ok((0, 1)));
        assert_eq!(parse_shard("3/8"), Ok((3, 8)));
        assert_eq!(parse_shard("0/4294967295"), Ok((0, u32::MAX)));
        #[rustfmt::skip]
        let bad_specs = [
            // structurally malformed
            "", "3", "a/b", "1/2/3", "/", "1/", "/4",
            // zero shards or index out of range
            "1/0", "0/0", "2/2", "5/4",
            // decorated or non-decimal numbers
            "-1/2", "+1/2", "1/+2", " 1/2", "1/2 ", "0x1/4", "1_0/20",
            // overflow
            "0/4294967296", "99999999999/4",
        ];
        for bad in bad_specs {
            assert!(parse_shard(bad).is_err(), "`{bad}` must be rejected");
        }
        // Errors carry the offending spec so multi-machine scripts fail
        // debuggably.
        assert!(parse_shard("7/4")
            .expect_err("err")
            .contains("out of range"));
        assert!(parse_shard("1/0").expect_err("err").contains("at least 1"));
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["gcc", "--arch", "sparc", "--scale", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_flag(&args, "--arch").as_deref(), Some("sparc"));
        assert_eq!(parse_flag(&args, "--scale").as_deref(), Some("2"));
        assert_eq!(parse_flag(&args, "--missing"), None);
        // A trailing flag with no value yields None rather than panicking.
        let args = vec!["--arch".to_string()];
        assert_eq!(parse_flag(&args, "--arch"), None);
    }

    #[test]
    fn tier_flag_parsing() {
        let to_args =
            |words: &[&str]| -> Vec<String> { words.iter().map(|s| s.to_string()).collect() };
        assert_eq!(parse_tier(&to_args(&[])), Ok(None));
        assert_eq!(
            parse_tier(&to_args(&["--tier", "interp"])),
            Ok(Some(ExecTier::Interp))
        );
        assert_eq!(
            parse_tier(&to_args(&["--tier", "threaded"])),
            Ok(Some(ExecTier::Threaded(TierConfig::default())))
        );
        // `threaded:N` and the standalone knob agree; the knob alone
        // implies the threaded tier.
        let expect = Some(ExecTier::Threaded(TierConfig {
            threshold: 16,
            ..TierConfig::default()
        }));
        assert_eq!(parse_tier(&to_args(&["--tier", "threaded:16"])), Ok(expect));
        assert_eq!(
            parse_tier(&to_args(&["--tier", "threaded", "--tier-threshold", "16"])),
            Ok(expect)
        );
        assert_eq!(
            parse_tier(&to_args(&["--tier-threshold", "16"])),
            Ok(expect)
        );
        for bad in [
            &["--tier", "jit"][..],
            &["--tier-threshold", "0"],
            &["--tier-threshold", "many"],
            &["--tier", "interp", "--tier-threshold", "4"],
        ] {
            assert!(
                parse_tier(&to_args(bad)).is_err(),
                "`{bad:?}` must be rejected"
            );
        }
    }

    #[test]
    fn tier_errors_point_at_offending_token() {
        // (args, echoed spec, expected message fragment, caret column,
        // caret width) — same diagnostic shape as `--ib-policy` and
        // `--predictor` errors above.
        for (args, spec, msg, col, width) in [
            (
                &["--tier", "jit"][..],
                "jit",
                "unknown execution tier `jit`",
                0,
                3,
            ),
            (
                &["--tier", "threaded:abc"],
                "threaded:abc",
                "bad --tier threshold `abc`",
                9,
                3,
            ),
            (
                &["--tier-threshold", "many"],
                "many",
                "bad --tier-threshold `many`",
                0,
                4,
            ),
            (
                &["--tier-threshold", "0"],
                "0",
                "bad --tier-threshold `0`",
                0,
                1,
            ),
            (
                &["--tier", "interp", "--tier-threshold", "4"],
                "interp",
                "--tier-threshold needs --tier threaded",
                0,
                6,
            ),
        ] {
            let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            let err = parse_tier(&argv).expect_err(&format!("`{args:?}` must be rejected"));
            let lines: Vec<&str> = err.lines().collect();
            assert!(lines[0].contains(msg), "`{args:?}`: {err}");
            assert_eq!(lines[1], format!("  {spec}"), "`{args:?}` echoed");
            assert_eq!(
                lines[2],
                format!("  {}{}", " ".repeat(col), "^".repeat(width)),
                "`{args:?}` caret must sit under the offending token:\n{err}"
            );
        }
    }
}
