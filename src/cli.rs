//! Parsing helpers for the `strata` command-line driver, kept in the
//! library so they are unit-testable.

use strata_core::{FlagsPolicy, IbMechanism, IbtcPlacement, IbtcScope, RetMechanism, SdtConfig};

/// Returns the value following `flag` in `args`, if present.
pub fn parse_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// Parses a `--shard` spec of the form `i/n` into `(index, count)` with
/// `index < count` and `count >= 1`.
///
/// # Errors
///
/// Returns a human-readable message for malformed specs (`3`, `a/b`,
/// `1/0`) and out-of-range indices (`2/2`).
pub fn parse_shard(spec: &str) -> Result<(u32, u32), String> {
    let (i, n) = spec
        .split_once('/')
        .ok_or_else(|| format!("bad --shard `{spec}` (expected `i/n`, e.g. `0/4`)"))?;
    let index: u32 = i.parse().map_err(|_| format!("bad shard index `{i}` in `{spec}`"))?;
    let count: u32 = n.parse().map_err(|_| format!("bad shard count `{n}` in `{spec}`"))?;
    if count == 0 {
        return Err(format!("shard count must be at least 1 in `{spec}`"));
    }
    if index >= count {
        return Err(format!("shard index {index} out of range for {count} shard(s)"));
    }
    Ok((index, count))
}

/// Parses a CLI configuration spec into an [`SdtConfig`].
///
/// Specs: `reentry`, `ibtc:<entries>`, `ibtc-outline:<entries>`,
/// `ibtc-persite:<entries>`, `sieve:<buckets>`, `tuned:<ibtc>,<rc>`,
/// `fastret:<ibtc>`, `shadow:<ibtc>,<depth>`, with optional `+noflags` /
/// `+nolink` modifiers.
///
/// # Errors
///
/// Returns a human-readable message for unknown kinds, malformed sizes, and
/// unknown modifiers. (Range validation happens later in
/// [`SdtConfig::validate`].)
pub fn parse_config(spec: &str) -> Result<SdtConfig, String> {
    let mut parts = spec.split('+');
    let head = parts.next().unwrap_or_default();
    let (kind, sizes) = match head.split_once(':') {
        Some((k, s)) => (k, s),
        None => (head, ""),
    };
    let size = |s: &str| -> Result<u32, String> {
        s.parse().map_err(|_| format!("bad size `{s}` in config `{spec}`"))
    };
    let mut cfg = match kind {
        "reentry" => SdtConfig::reentry(),
        "ibtc" => SdtConfig::ibtc_inline(size(sizes)?),
        "ibtc-outline" => SdtConfig::ibtc_out_of_line(size(sizes)?),
        "ibtc-persite" => SdtConfig {
            ib: IbMechanism::Ibtc {
                entries: size(sizes)?,
                scope: IbtcScope::PerSite,
                placement: IbtcPlacement::Inline,
            },
            ..SdtConfig::ibtc_inline(64)
        },
        "sieve" => SdtConfig::sieve(size(sizes)?),
        "tuned" => {
            let (a, b) = sizes
                .split_once(',')
                .ok_or_else(|| format!("tuned needs `<ibtc>,<rc>`, got `{sizes}`"))?;
            SdtConfig::tuned(size(a)?, size(b)?)
        }
        "fastret" => {
            let mut c = SdtConfig::ibtc_inline(size(sizes)?);
            c.ret = RetMechanism::FastReturn;
            c
        }
        "shadow" => {
            let (a, b) = sizes
                .split_once(',')
                .ok_or_else(|| format!("shadow needs `<ibtc>,<depth>`, got `{sizes}`"))?;
            let mut c = SdtConfig::ibtc_inline(size(a)?);
            c.ret = RetMechanism::ShadowStack { depth: size(b)? };
            c
        }
        other => return Err(format!("unknown config kind `{other}`")),
    };
    for modifier in parts {
        match modifier {
            "noflags" => cfg.flags = FlagsPolicy::None,
            "nolink" => cfg.link_fragments = false,
            other => return Err(format!("unknown config modifier `+{other}`")),
        }
    }
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_roundtrip_through_describe() {
        for (spec, described) in [
            ("reentry", "reentry"),
            ("ibtc:4096", "ibtc(4096,shared,inline)"),
            ("ibtc-outline:256", "ibtc(256,shared,outline)"),
            ("ibtc-persite:64", "ibtc(64,per-site,inline)"),
            ("sieve:1024", "sieve(1024)"),
            ("tuned:4096,512", "ibtc(4096,shared,inline)+rc(512)"),
            ("fastret:256", "ibtc(256,shared,inline)+fastret"),
            ("shadow:256,64", "ibtc(256,shared,inline)+shadow(64)"),
            ("sieve:64+noflags+nolink", "sieve(64)+noflags+nolink"),
        ] {
            let cfg = parse_config(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(cfg.describe(), described, "{spec}");
            assert!(cfg.validate().is_ok(), "{spec}");
        }
    }

    #[test]
    fn malformed_specs_rejected() {
        for bad in [
            "frob",
            "ibtc:abc",
            "tuned:4096",
            "shadow:256",
            "ibtc:256+wat",
            "",
        ] {
            assert!(parse_config(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn shard_specs() {
        assert_eq!(parse_shard("0/1"), Ok((0, 1)));
        assert_eq!(parse_shard("3/8"), Ok((3, 8)));
        for bad in ["", "3", "a/b", "1/0", "2/2", "-1/2", "1/2/3"] {
            assert!(parse_shard(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> =
            ["gcc", "--arch", "sparc", "--scale", "2"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_flag(&args, "--arch").as_deref(), Some("sparc"));
        assert_eq!(parse_flag(&args, "--scale").as_deref(), Some("2"));
        assert_eq!(parse_flag(&args, "--missing"), None);
        // A trailing flag with no value yields None rather than panicking.
        let args = vec!["--arch".to_string()];
        assert_eq!(parse_flag(&args, "--arch"), None);
    }
}
