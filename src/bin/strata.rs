//! `strata` — command-line driver for the SDT laboratory.
//!
//! ```text
//! strata list
//! strata run <workload> [--config <spec>] [--ib-policy <spec>] [--arch <name>]
//!            [--scale N] [--instrument] [--cache-limit BYTES] [--dump-cache N]
//! strata compare <workload> [--arch <name>] [--scale N]
//! strata verify [<workload>] [--config <spec>] [--ib-policy <spec>] [--all]
//!               [--arch <name>] [--scale N] [--format text|json]
//!               [--validate-tiers]
//! strata bench [--jobs N] [--filter <ids>] [--format text|csv|json]
//!              [--scale N] [--variant N] [--cache] [--no-artifacts]
//!              [--artifacts-dir DIR] [--baseline DIR] [--tolerance PCT]
//!              [--shard I/N] [--list]
//! strata fleet serve [--bind ADDR] [--filter <ids>] [--format text|csv|json]
//!              [--scale N] [--variant N] [--cache] [--lease SECS]
//!              [--progress text|json|none] [--no-artifacts] [--artifacts-dir DIR]
//! strata fleet work --connect ADDR [--name NAME] [--retries N]
//! ```
//!
//! `--baseline DIR` diffs the run's artifacts against the committed
//! snapshot under `DIR` and exits nonzero when any metric drifts more
//! than `--tolerance` percent (default 5) — the CI regression gate.
//!
//! `--shard I/N` executes only the Ith of N stable-hash slices of the
//! suite's cell set into the disk cache (implies `--cache`), for
//! fanning a run out across machines; merge the shards' `*.cell` files
//! and render with a plain `strata bench --cache`.
//!
//! Config specs mirror `SdtConfig::describe()` loosely:
//! `reentry`, `ibtc:<entries>`, `ibtc-outline:<entries>`,
//! `ibtc-persite:<entries>`, `sieve:<buckets>`, `tuned:<ibtc>,<rc>`,
//! `fastret:<ibtc>`, `shadow:<ibtc>,<depth>`; append `+noflags` or `+nolink`.
//!
//! `--ib-policy` overrides per-branch-class dispatch strategies on top of
//! the base config, e.g. `--ib-policy jump=sieve:4096,call=ibtc:512x2,ret=retcache:1024`
//! (see `strata_lab::cli::parse_policy` for the full grammar).

use std::process::ExitCode;

use strata_lab::arch::ArchProfile;
use strata_lab::cli::{parse_config, parse_flag, parse_policy, parse_shard, parse_tier};
use strata_lab::core::{run_native_tiered, Origin, RetMechanism, Sdt, SdtConfig};
use strata_lab::expt::{self, EnvKnobs, OutputFormat, SuiteOptions};
use strata_lab::machine::{ExecTier, TierConfig};
use strata_lab::stats::Table;
use strata_lab::workloads::{by_name, registry, Params};

const FUEL: u64 = 8_000_000_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            list();
            ExitCode::SUCCESS
        }
        Some("run") => dispatch(run_cmd(&args[1..])),
        Some("compare") => dispatch(compare_cmd(&args[1..])),
        Some("bench") => dispatch(bench_cmd(&args[1..])),
        Some("fleet") => dispatch(fleet_cmd(&args[1..])),
        Some("trace") => dispatch(trace_cmd(&args[1..])),
        Some("verify") => dispatch(verify_cmd(&args[1..])),
        _ => {
            eprintln!(
                "usage: strata <list|run|compare> ...\n\
                 \n\
                 strata list\n\
                 strata run <workload> [--config SPEC] [--ib-policy SPEC] [--arch x86|sparc|mips]\n\
                 \x20          [--scale N] [--instrument] [--cache-limit BYTES] [--dump-cache N]\n\
                 \x20          [--tier interp|threaded[:M]] [--tier-threshold M] [--predictor SPEC]\n\
                 strata compare <workload> [--arch NAME] [--scale N] [--tier SPEC]\n\
                 \x20            [--predictor SPEC]\n\
                 strata verify [<workload>] [--config SPEC] [--ib-policy SPEC] [--all]\n\
                 \x20            [--arch NAME] [--scale N] [--format text|json]\n\
                 strata bench [--jobs N] [--filter IDS] [--format text|csv|json]\n\
                 \x20            [--scale N] [--variant N] [--cache] [--no-artifacts]\n\
                 \x20            [--artifacts-dir DIR] [--baseline DIR] [--tolerance PCT]\n\
                 \x20            [--shard I/N] [--list] [--sampled] [--traces DIR]\n\
                 \x20            [--tier interp|threaded[:M]] [--tier-threshold M] [--predictor SPEC]\n\
                 strata fleet serve [--bind ADDR] [--filter IDS] [--format text|csv|json]\n\
                 \x20            [--scale N] [--variant N] [--cache] [--lease SECS]\n\
                 \x20            [--progress text|json|none] [--no-artifacts]\n\
                 \x20            [--artifacts-dir DIR] [--sampled] [--traces DIR] [--predictor SPEC]\n\
                 strata fleet work --connect ADDR [--name NAME] [--retries N] [--tier SPEC]\n\
                 \x20            [--sampled] [--traces DIR] [--predictor SPEC]\n\
                 strata trace record <workload|all> [--scale N] [--variant N]\n\
                 \x20            [--traces DIR] [--tier SPEC]\n\
                 strata trace info <file.strace>\n\
                 strata trace simpoints <workload> [--scale N] [--variant N] [--traces DIR]\n\
                 \n\
                 config SPECs: reentry | ibtc:4096 | ibtc-outline:4096 | ibtc-persite:64\n\
                 \x20             | sieve:4096 | tuned:4096,1024 | fastret:4096\n\
                 \x20             | shadow:4096,1024  (+noflags, +nolink)\n\
                 policy SPECs: jump=sieve:4096,call=ibtc:512x2,ret=retcache:1024\n\
                 \x20             classes jump|call|ret; strategies inherit | reentry\n\
                 \x20             | ibtc:N[x2] | ibtc-outline:N | ibtc-persite:N[x2]\n\
                 \x20             | sieve:N | adaptive[:ibtc,sieve[,arity]]\n\
                 \x20             | predictive[:sieve,probation];\n\
                 \x20             ret: asib | retcache:N | rc:N | fastret | shadow:N\n\
                 predictor SPECs: legacy | none | ideal | btb:N | btb:SxW | ittage[:T]"
            );
            ExitCode::from(2)
        }
    }
}

/// Parses `--sampled` / `--traces DIR` and pins sampled mode for the
/// process (like `parse_tier` + `set_exec_tier`). `--traces` without
/// `--sampled` is rejected so a typo cannot silently run exact mode.
/// Absent both flags, the `STRATA_SAMPLED` environment variable applies.
fn parse_sampled(args: &[String]) -> Result<(), String> {
    let sampled = args.iter().any(|a| a == "--sampled");
    let traces = parse_flag(args, "--traces");
    if traces.is_some() && !sampled {
        return Err("--traces only applies with --sampled".into());
    }
    if sampled {
        expt::set_sampled(
            traces
                .unwrap_or_else(|| expt::DEFAULT_TRACES_DIR.into())
                .into(),
        );
    }
    Ok(())
}

/// Parses `--predictor SPEC` and pins the process-wide target-predictor
/// model (like `parse_sampled`). Absent the flag, the `STRATA_PREDICTOR`
/// environment variable applies, then the legacy direct-mapped BTB.
fn parse_predictor_flag(args: &[String]) -> Result<(), String> {
    if let Some(spec) = parse_flag(args, "--predictor") {
        strata_lab::arch::set_predictor(strata_lab::cli::parse_predictor(&spec)?);
    }
    Ok(())
}

fn dispatch(result: Result<(), String>) -> ExitCode {
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn list() {
    let mut t = Table::new("available workloads", &["name", "models", "summary"]);
    for spec in registry() {
        t.row([spec.name, "SPEC CINT2000", spec.summary]);
    }
    println!("{}", t.render_text());
}

struct CommonArgs {
    workload: &'static strata_lab::workloads::Spec,
    profile: ArchProfile,
    params: Params,
}

fn parse_common(args: &[String]) -> Result<CommonArgs, String> {
    let name = args
        .first()
        .ok_or("missing workload name (try `strata list`)")?;
    let workload =
        by_name(name).ok_or_else(|| format!("unknown workload `{name}` (try `strata list`)"))?;
    let profile = match parse_flag(args, "--arch").as_deref() {
        None | Some("x86") => ArchProfile::x86_like(),
        Some("sparc") => ArchProfile::sparc_like(),
        Some("mips") => ArchProfile::mips_like(),
        Some(other) => return Err(format!("unknown arch `{other}` (x86|sparc|mips)")),
    };
    let scale = match parse_flag(args, "--scale") {
        Some(s) => s.parse().map_err(|_| format!("bad --scale `{s}`"))?,
        None => 1,
    };
    let variant = match parse_flag(args, "--variant") {
        Some(v) => v.parse().map_err(|_| format!("bad --variant `{v}`"))?,
        None => 0,
    };
    Ok(CommonArgs {
        workload,
        profile,
        params: Params { scale, variant },
    })
}

fn run_cmd(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    parse_predictor_flag(args)?;
    let mut cfg = match parse_flag(args, "--config") {
        Some(spec) => parse_config(&spec)?,
        None => SdtConfig::ibtc_inline(4096),
    };
    if let Some(spec) = parse_flag(args, "--ib-policy") {
        parse_policy(&spec, &mut cfg)?;
    }
    if args.iter().any(|a| a == "--instrument") {
        cfg.instrument_blocks = true;
    }
    if let Some(limit) = parse_flag(args, "--cache-limit") {
        cfg.cache_limit = Some(
            limit
                .parse()
                .map_err(|_| format!("bad --cache-limit `{limit}`"))?,
        );
    }

    // The tier only changes how the host executes the native baseline;
    // retire streams are bit-identical, so every reported number below
    // is tier-independent (only wall-clock moves).
    let tier = parse_tier(args)?.unwrap_or(ExecTier::Interp);

    let program = (common.workload.build)(&common.params);
    let native = run_native_tiered(&program, common.profile.clone(), FUEL, tier)
        .map_err(|e| e.to_string())?;
    let mut sdt = Sdt::new(cfg, &program).map_err(|e| e.to_string())?;
    let report = sdt.run(common.profile, FUEL).map_err(|e| e.to_string())?;

    let pct = |c: u64| format!("{:.1}%", c as f64 * 100.0 / report.total_cycles as f64);
    let mut t = Table::new(
        format!(
            "{} under {} on {}",
            program.name, report.config, report.arch
        ),
        &["metric", "value"],
    );
    t.row([
        "slowdown vs native",
        &format!("{:.3}x", report.slowdown(native.total_cycles)),
    ]);
    t.row(["total cycles", &report.total_cycles.to_string()]);
    t.row(["native cycles", &native.total_cycles.to_string()]);
    t.row(["guest instructions", &report.instructions.to_string()]);
    for origin in Origin::ALL {
        t.row([
            &format!("cycles: {}", origin.label()),
            &pct(report.cycles_for(origin)),
        ]);
    }
    t.row(["cycles: translator", &pct(report.translator_cycles)]);
    t.row(["IB dispatches", &report.mech.ib_dispatches.to_string()]);
    t.row([
        "IB hit rate",
        &format!("{:.2}%", report.mech.ib_hit_rate() * 100.0),
    ]);
    t.row(["ret dispatches", &report.mech.ret_dispatches.to_string()]);
    t.row(["fragments", &report.mech.fragments.to_string()]);
    t.row(["cache bytes", &report.mech.cache_used_bytes.to_string()]);
    t.row(["cache flushes", &report.mech.cache_flushes.to_string()]);
    println!("{}", t.render_text());

    let mut ct = Table::new(
        "per-class dispatch breakdown",
        &["class", "mechanism", "dispatches", "misses", "promotions"],
    );
    for c in &report.per_class {
        ct.row([
            c.class.to_string(),
            c.mechanism.clone(),
            c.dispatches.to_string(),
            c.misses.to_string(),
            c.promotions.to_string(),
        ]);
    }
    println!("{}", ct.render_text());

    if cfg.instrument_blocks {
        let blocks = sdt.block_profile();
        let mut bt = Table::new("hottest blocks", &["app address", "executions"]);
        for &(addr, count) in blocks.iter().take(8) {
            bt.row([format!("{addr:#x}"), count.to_string()]);
        }
        println!("{}", bt.render_text());
    }
    if let Some(n) = parse_flag(args, "--dump-cache") {
        let n: usize = n.parse().map_err(|_| format!("bad --dump-cache `{n}`"))?;
        print!("{}", sdt.dump_cache(n));
    }
    Ok(())
}

/// Runs the experiment suite through the `strata-expt` orchestrator.
///
/// `STRATA_SCALE` / `STRATA_VARIANT` provide defaults for `--scale` /
/// `--variant`; JSON artifacts land in `results/` unless `--no-artifacts`.
fn bench_cmd(args: &[String]) -> Result<(), String> {
    let knobs = EnvKnobs::from_env();
    // Pin the process-wide execution tier for native cells before any
    // cell runs. Absent flags, `exec_tier()` falls back to the
    // STRATA_TIER environment variable, then the interpreter.
    if let Some(tier) = parse_tier(args)? {
        expt::set_exec_tier(tier);
    }
    parse_sampled(args)?;
    parse_predictor_flag(args)?;
    let mut opts = SuiteOptions {
        params: knobs.params(),
        ..SuiteOptions::default()
    };
    // `--list` prints the selected experiments (honoring `--filter`) with
    // their cell counts and runs nothing.
    if args.iter().any(|a| a == "--list") {
        let filter = parse_flag(args, "--filter");
        expt::validate_filter(filter.as_deref())?;
        let selected = expt::select(filter.as_deref());
        let params = knobs.params();
        let mut t = Table::new(
            format!("{} experiment(s) selected", selected.len()),
            &["id", "cells", "title"],
        );
        let mut total = 0usize;
        for e in &selected {
            let count = (e.cells)(params).len();
            total += count;
            t.row([e.id.to_string(), count.to_string(), e.title.to_string()]);
        }
        println!("{}", t.render_text());
        eprintln!("{total} cell(s) before cross-experiment dedup");
        return Ok(());
    }
    if let Some(jobs) = parse_flag(args, "--jobs") {
        opts.jobs = jobs.parse().map_err(|_| format!("bad --jobs `{jobs}`"))?;
        if opts.jobs == 0 {
            return Err("--jobs must be at least 1".into());
        }
    }
    opts.filter = parse_flag(args, "--filter");
    if let Some(format) = parse_flag(args, "--format") {
        opts.format = OutputFormat::parse(&format)?;
    }
    if let Some(scale) = parse_flag(args, "--scale") {
        opts.params.scale = scale
            .parse()
            .map_err(|_| format!("bad --scale `{scale}`"))?;
    }
    if let Some(variant) = parse_flag(args, "--variant") {
        opts.params.variant = variant
            .parse()
            .map_err(|_| format!("bad --variant `{variant}`"))?;
    }
    if args.iter().any(|a| a == "--cache") {
        opts.cache_dir = Some("results/cache".into());
    }
    let artifacts_dir = parse_flag(args, "--artifacts-dir").unwrap_or_else(|| "results".into());
    let baseline_dir = parse_flag(args, "--baseline");
    if baseline_dir.is_some() && expt::sampled_mode().is_some() {
        return Err(
            "--baseline gates exact results; estimated (--sampled) runs cannot be gated \
             against it"
                .into(),
        );
    }

    // Shard mode: execute this machine's slice of the cell set into the
    // disk cache and stop — no rendering, no artifacts, no gate. Merge
    // the shards' cache directories, then render with `--cache`.
    if let Some(spec) = parse_flag(args, "--shard") {
        let (index, count) = parse_shard(&spec)?;
        if baseline_dir.is_some() {
            return Err(
                "--baseline needs the full suite; run it on the merged cache, not a shard".into(),
            );
        }
        // A shard's only output is the cell cache, so imply `--cache`.
        let cache_dir = opts
            .cache_dir
            .get_or_insert_with(|| "results/cache".into())
            .clone();
        let report = expt::run_shard(&opts, expt::Shard { index, count })?;
        let s = report.store_stats;
        eprintln!(
            "shard {index}/{count}: {} of {} cell(s) ({} simulated, {} memo hits, {} disk hits) \
             on {} job(s) -> {}",
            report.shard_cells,
            report.total_cells,
            s.computed,
            s.memo_hits,
            s.disk_hits,
            opts.jobs,
            cache_dir.display(),
        );
        return Ok(());
    }
    let tolerance = match parse_flag(args, "--tolerance") {
        Some(t) => {
            let pct: f64 = t.parse().map_err(|_| format!("bad --tolerance `{t}`"))?;
            if !pct.is_finite() || pct < 0.0 {
                return Err(format!(
                    "--tolerance must be a nonnegative percentage, got `{t}`"
                ));
            }
            pct
        }
        None => 5.0,
    };

    let report = expt::run_suite(&opts)?;
    print!("{}", report.rendered);
    if knobs.csv && opts.format == OutputFormat::Text {
        for section in &report.sections {
            for table in &section.output.tables {
                println!("{}", table.render_csv());
            }
        }
    }

    if !args.iter().any(|a| a == "--no-artifacts") {
        let written = expt::write_artifacts(&report, artifacts_dir.as_ref())?;
        eprintln!("wrote {} artifact(s) under {artifacts_dir}/", written.len());
    }
    let s = report.store_stats;
    eprintln!(
        "cells: {} unique ({} simulated, {} memo hits, {} disk hits) on {} job(s)",
        report.unique_cells, s.computed, s.memo_hits, s.disk_hits, opts.jobs
    );

    // The regression gate: diff against the committed baseline and fail
    // the process on any out-of-tolerance drift. The delta report is
    // always written (it is the gate's primary output and what CI uploads
    // on failure), independent of --no-artifacts.
    if let Some(dir) = baseline_dir {
        let delta = expt::baseline_gate(&report, dir.as_ref(), tolerance)?;
        let text = delta.render_text();
        print!("{text}");
        let report_dir = std::path::Path::new(&artifacts_dir);
        if let Err(e) = std::fs::create_dir_all(report_dir) {
            eprintln!("warning: create {artifacts_dir}/: {e}");
        }
        for (name, content) in [
            ("delta_report.txt", text),
            ("delta_report.json", delta.to_json().render_pretty() + "\n"),
        ] {
            let path = report_dir.join(name);
            match std::fs::write(&path, content) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("warning: write {}: {e}", path.display()),
            }
        }
        if !delta.is_clean() {
            return Err(format!(
                "{} metric(s) regressed beyond {tolerance}% vs baseline {dir}",
                delta.regressions()
            ));
        }
    }
    Ok(())
}

/// Runs the distributed-fleet commands: `serve` hosts a coordinator that
/// leases the selected suite's cells to TCP workers and renders the
/// merged result exactly like a local `strata bench`; `work` connects to
/// a coordinator and executes cells until the suite is done.
fn fleet_cmd(args: &[String]) -> Result<(), String> {
    use strata_lab::fleet;

    match args.first().map(String::as_str) {
        Some("serve") => {
            let args = &args[1..];
            parse_sampled(args)?;
            parse_predictor_flag(args)?;
            let knobs = EnvKnobs::from_env();
            let mut serve = fleet::ServeOptions {
                suite: SuiteOptions {
                    params: knobs.params(),
                    ..SuiteOptions::default()
                },
                ..fleet::ServeOptions::default()
            };
            if let Some(bind) = parse_flag(args, "--bind") {
                serve.bind = bind;
            }
            serve.suite.filter = parse_flag(args, "--filter");
            if let Some(format) = parse_flag(args, "--format") {
                serve.suite.format = OutputFormat::parse(&format)?;
            }
            if let Some(scale) = parse_flag(args, "--scale") {
                serve.suite.params.scale = scale
                    .parse()
                    .map_err(|_| format!("bad --scale `{scale}`"))?;
            }
            if let Some(variant) = parse_flag(args, "--variant") {
                serve.suite.params.variant = variant
                    .parse()
                    .map_err(|_| format!("bad --variant `{variant}`"))?;
            }
            if args.iter().any(|a| a == "--cache") {
                serve.suite.cache_dir = Some("results/cache".into());
            }
            if let Some(lease) = parse_flag(args, "--lease") {
                let secs: u64 = lease
                    .parse()
                    .map_err(|_| format!("bad --lease `{lease}`"))?;
                if secs == 0 {
                    return Err("--lease must be at least 1 second".into());
                }
                serve.lease = std::time::Duration::from_secs(secs);
            }
            if let Some(mode) = parse_flag(args, "--progress") {
                serve.progress = fleet::Progress::parse(&mode)?;
            }
            let artifacts_dir =
                parse_flag(args, "--artifacts-dir").unwrap_or_else(|| "results".into());

            let coordinator = fleet::Coordinator::bind(serve)?;
            eprintln!(
                "fleet: serving on {}; point workers at it with \
                 `strata fleet work --connect <host:port>`",
                coordinator.local_addr()?
            );
            let report = coordinator.run()?;
            print!("{}", report.suite.rendered);
            if !args.iter().any(|a| a == "--no-artifacts") {
                let written = expt::write_artifacts(&report.suite, artifacts_dir.as_ref())?;
                eprintln!("wrote {} artifact(s) under {artifacts_dir}/", written.len());
            }
            let s = &report.stats;
            let per_worker = s
                .per_worker
                .iter()
                .map(|(name, n)| format!("{name}:{n}"))
                .collect::<Vec<_>>()
                .join(" ");
            eprintln!(
                "fleet: {} cell(s): {} preloaded, {} received, {} requeued, \
                 {} duplicate(s), {} rejected, {} worker(s){}",
                s.cells,
                s.preloaded,
                s.received,
                s.requeued,
                s.duplicates,
                s.rejected,
                s.workers_seen,
                if per_worker.is_empty() {
                    String::new()
                } else {
                    format!(" [{per_worker}]")
                },
            );
            Ok(())
        }
        Some("work") => {
            let args = &args[1..];
            // Workers run native cells through the same process-global
            // tier as `strata bench`; results are bit-identical either
            // way, so tier choice is per-worker and never part of the
            // protocol. Absent the flag, STRATA_TIER applies.
            if let Some(tier) = parse_tier(args)? {
                expt::set_exec_tier(tier);
            }
            // Sampled mode and predictor model must match the
            // coordinator's — the suite fingerprint is salted by both, so
            // a mismatched worker is refused at handshake rather than
            // mixing result kinds.
            parse_sampled(args)?;
            parse_predictor_flag(args)?;
            let mut opts = fleet::WorkOptions {
                connect: parse_flag(args, "--connect")
                    .ok_or("fleet work needs --connect <host:port>")?,
                ..fleet::WorkOptions::default()
            };
            if let Some(name) = parse_flag(args, "--name") {
                opts.name = name;
            }
            if let Some(retries) = parse_flag(args, "--retries") {
                opts.retries = retries
                    .parse()
                    .map_err(|_| format!("bad --retries `{retries}`"))?;
            }
            let name = opts.name.clone();
            let report = fleet::work(opts)?;
            eprintln!(
                "fleet: {name} executed {} cell(s), {} reconnect(s)",
                report.executed, report.reconnects
            );
            Ok(())
        }
        _ => Err("usage: strata fleet <serve|work> ... (see `strata` for flags)".into()),
    }
}

/// `strata trace` — records reference retire traces, inspects them, and
/// elects SimPoints, independent of any bench run. `record all`
/// refreshes the canonical per-workload traces that `bench --sampled`
/// replays; `record` always re-records (it never trusts a stale file),
/// while `simpoints` reuses an existing valid trace.
fn trace_cmd(args: &[String]) -> Result<(), String> {
    use strata_lab::expt::sampled;
    use strata_lab::trace::{select, Trace};

    let verb = args.first().map(String::as_str);
    let rest = if args.is_empty() { args } else { &args[1..] };
    let dir_of = |a: &[String]| {
        std::path::PathBuf::from(
            parse_flag(a, "--traces").unwrap_or_else(|| sampled::DEFAULT_TRACES_DIR.into()),
        )
    };
    let params_of = |a: &[String]| -> Result<Params, String> {
        let scale = match parse_flag(a, "--scale") {
            Some(s) => s.parse().map_err(|_| format!("bad --scale `{s}`"))?,
            None => 1,
        };
        let variant = match parse_flag(a, "--variant") {
            Some(v) => v.parse().map_err(|_| format!("bad --variant `{v}`"))?,
            None => 0,
        };
        Ok(Params { scale, variant })
    };

    match verb {
        Some("record") => {
            if let Some(tier) = parse_tier(rest)? {
                expt::set_exec_tier(tier);
            }
            let target = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or("usage: strata trace record <workload|all> ...")?;
            let dir = dir_of(rest);
            let params = params_of(rest)?;
            let names: Vec<&str> = if target == "all" {
                registry().iter().map(|s| s.name).collect()
            } else {
                vec![
                    by_name(target)
                        .ok_or_else(|| format!("unknown workload `{target}` (try `strata list`)"))?
                        .name,
                ]
            };
            let mut t = Table::new(
                format!("recorded {} trace(s) under {}", names.len(), dir.display()),
                &[
                    "workload",
                    "instructions",
                    "interval",
                    "points",
                    "coverage",
                    "bytes",
                ],
            );
            for name in names {
                let trace = sampled::record_trace(&dir, name, params)?;
                // `record_trace` elected and persisted the sidecar;
                // re-electing here is deterministic, so the printed rows
                // match the file even if the directory is unwritable.
                let points = select(&trace);
                let path = dir.join(sampled::trace_file_name(name, params));
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                t.row([
                    name.to_string(),
                    trace.records.len().to_string(),
                    trace.interval.to_string(),
                    points.points.len().to_string(),
                    format!("{:.1}%", points.coverage() * 100.0),
                    bytes.to_string(),
                ]);
            }
            println!("{}", t.render_text());
            Ok(())
        }
        Some("info") => {
            let path = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or("usage: strata trace info <file.strace>")?;
            let info = Trace::info(std::path::Path::new(path)).map_err(|e| e.to_string())?;
            let mut t = Table::new(format!("trace {path}"), &["field", "value"]);
            t.row(["workload", &info.workload]);
            t.row(["scale", &info.scale.to_string()]);
            t.row(["variant", &info.variant.to_string()]);
            t.row(["instructions", &info.instructions.to_string()]);
            t.row(["interval", &info.interval.to_string()]);
            t.row(["blocks", &info.blocks.to_string()]);
            t.row(["checksum", &format!("{:#010x}", info.checksum)]);
            t.row(["baselines", &info.profiles.join(", ")]);
            t.row(["file bytes", &info.file_bytes.to_string()]);
            t.row([
                "bytes/instr",
                &format!(
                    "{:.3}",
                    info.file_bytes as f64 / info.instructions.max(1) as f64
                ),
            ]);
            println!("{}", t.render_text());
            Ok(())
        }
        Some("simpoints") => {
            let name = rest
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or("usage: strata trace simpoints <workload> ...")?;
            let spec = by_name(name)
                .ok_or_else(|| format!("unknown workload `{name}` (try `strata list`)"))?;
            let dir = dir_of(rest);
            let params = params_of(rest)?;
            let bundle = sampled::ensure_bundle(&dir, spec.name, params)?;
            let p = &bundle.points;
            let mut t = Table::new(
                format!(
                    "{}: {} point(s) over {} interval(s) of {} instr ({} phase(s))",
                    spec.name,
                    p.points.len(),
                    p.intervals,
                    p.interval,
                    p.k
                ),
                &["interval", "weight", "cluster"],
            );
            for pt in &p.points {
                t.row([
                    pt.interval.to_string(),
                    pt.weight.to_string(),
                    pt.cluster.to_string(),
                ]);
            }
            println!("{}", t.render_text());
            eprintln!(
                "coverage {:.2}% of {} recorded instruction(s)",
                p.coverage() * 100.0,
                p.instructions
            );
            Ok(())
        }
        _ => Err("usage: strata trace <record|info|simpoints> ... (see `strata` for flags)".into()),
    }
}

/// Statically verifies the code the translator emits: runs the workload
/// under each requested configuration, snapshots the fragment cache, and
/// checks it with `strata-analysis` (CFG recovery, dataflow lints, table
/// audits). Exits nonzero if any report has findings at warning severity
/// or above. `--all` sweeps every registered mechanism plus the
/// mixed-policy configurations of the fig. 18 experiment.
///
/// `--validate-tiers` additionally runs the workload(s) natively under
/// both execution tiers and checks every superblock the threaded tier
/// translated by symbolic per-slot equivalence (translation validation;
/// see `strata-analysis::validate`). With `--all` the tier sweep covers
/// every registered workload, since tier validation is independent of
/// the SDT mechanism configuration.
fn verify_cmd(args: &[String]) -> Result<(), String> {
    use strata_lab::analysis;
    use strata_lab::stats::Json;

    // The workload is optional (default `perlbmk`); everything else is
    // flag-driven, so only a non-flag first argument names a workload.
    let name = match args.first() {
        Some(a) if !a.starts_with("--") => a.clone(),
        _ => "perlbmk".to_string(),
    };
    let workload =
        by_name(&name).ok_or_else(|| format!("unknown workload `{name}` (try `strata list`)"))?;
    let profile = match parse_flag(args, "--arch").as_deref() {
        None | Some("x86") => ArchProfile::x86_like(),
        Some("sparc") => ArchProfile::sparc_like(),
        Some("mips") => ArchProfile::mips_like(),
        Some(other) => return Err(format!("unknown arch `{other}` (x86|sparc|mips)")),
    };
    let scale = match parse_flag(args, "--scale") {
        Some(s) => s.parse().map_err(|_| format!("bad --scale `{s}`"))?,
        None => 1,
    };
    let params = Params { scale, variant: 0 };
    let json = match parse_flag(args, "--format").as_deref() {
        None | Some("text") => false,
        Some("json") => true,
        Some(other) => return Err(format!("unknown --format `{other}` (text|json)")),
    };

    // (config spec, policy spec) pairs to verify.
    let specs: Vec<(String, String)> = if args.iter().any(|a| a == "--all") {
        VERIFY_SWEEP
            .iter()
            .map(|&(c, p)| (c.to_string(), p.to_string()))
            .collect()
    } else {
        vec![(
            parse_flag(args, "--config").unwrap_or_else(|| "ibtc:4096".into()),
            parse_flag(args, "--ib-policy").unwrap_or_default(),
        )]
    };

    let program = (workload.build)(&params);
    let mut reports = Vec::new();
    for (config, policy) in &specs {
        let mut cfg = parse_config(config)?;
        if !policy.is_empty() {
            parse_policy(policy, &mut cfg)?;
        }
        let mut sdt = Sdt::new(cfg, &program).map_err(|e| e.to_string())?;
        sdt.run(profile.clone(), FUEL).map_err(|e| e.to_string())?;
        reports.push(analysis::verify(&sdt));
    }

    // --validate-tiers: translation validation of the execution tiers,
    // on the superblocks a real native run of each workload promotes.
    let mut tier_entries: Vec<(&'static str, &'static str, analysis::TierReport)> = Vec::new();
    if args.iter().any(|a| a == "--validate-tiers") {
        let sweep: Vec<&'static str> = if args.iter().any(|a| a == "--all") {
            registry().iter().map(|w| w.name).collect()
        } else {
            vec![workload.name]
        };
        // A low promotion threshold maximizes translated coverage; the
        // interpreter row proves the no-tier path exports no blocks.
        let tiers = [
            ("interp", ExecTier::Interp),
            (
                "threaded:4",
                ExecTier::Threaded(TierConfig {
                    threshold: 4,
                    ..TierConfig::default()
                }),
            ),
        ];
        for wl in sweep {
            let spec = by_name(wl).expect("registry name resolves");
            let prog = (spec.build)(&params);
            for (label, tier) in tiers {
                let report = analysis::validate_program_tier(&prog, tier, FUEL)
                    .map_err(|e| format!("{wl} [{label}]: {e}"))?;
                tier_entries.push((wl, label, report));
            }
        }
    }

    let dirty = reports.iter().filter(|r| !r.is_clean()).count();
    let tier_dirty = tier_entries
        .iter()
        .filter(|(_, _, r)| !r.is_clean())
        .count();
    if json {
        let out = Json::obj([
            ("workload", Json::str(&name)),
            ("clean", Json::Bool(dirty == 0 && tier_dirty == 0)),
            ("reports", Json::arr(reports.iter().map(|r| r.to_json()))),
            (
                "tier_validation",
                Json::arr(tier_entries.iter().map(|(wl, label, r)| {
                    Json::obj([
                        ("workload", Json::str(*wl)),
                        ("tier", Json::str(*label)),
                        ("report", r.to_json()),
                    ])
                })),
            ),
        ]);
        println!("{}", out.render_pretty());
    } else {
        for r in &reports {
            print!("{}", r.render_text());
        }
        for (wl, label, r) in &tier_entries {
            print!("{wl} [{label}] {}", r.render_text());
        }
    }
    if dirty + tier_dirty > 0 {
        return Err(format!(
            "{dirty} of {} configuration(s) and {tier_dirty} of {} tier run(s) failed verification on {name}",
            specs.len(),
            tier_entries.len(),
        ));
    }
    if tier_entries.is_empty() {
        eprintln!("{} configuration(s) verified clean on {name}", specs.len());
    } else {
        eprintln!(
            "{} configuration(s) and {} tier run(s) verified clean",
            specs.len(),
            tier_entries.len(),
        );
    }
    Ok(())
}

/// The `verify --all` sweep: every registered mechanism in its canonical
/// shapes plus the mixed-policy configurations of the fig. 18 experiment.
const VERIFY_SWEEP: &[(&str, &str)] = &[
    ("reentry", ""),
    ("ibtc:4096", ""),
    ("ibtc-outline:4096", ""),
    ("ibtc-persite:64", ""),
    ("ibtc:512", "jump=ibtc:512x2,call=ibtc:512x2"),
    ("sieve:4096", ""),
    ("ibtc:512", "jump=adaptive:64,256,4,call=adaptive:64,256,4"),
    ("tuned:512,1024", ""),
    ("fastret:4096", ""),
    ("shadow:4096,1024", ""),
    ("ibtc:4096+noflags", ""),
    ("tuned:512,1024", "jump=sieve:4096,call=ibtc:512x2"),
    ("tuned:4096,1024", "call=sieve:1024"),
    (
        "tuned:512,1024",
        "jump=sieve:4096,call=ibtc:512x2,ret=shadow:1024",
    ),
];

fn compare_cmd(args: &[String]) -> Result<(), String> {
    let common = parse_common(args)?;
    parse_predictor_flag(args)?;
    let tier = parse_tier(args)?.unwrap_or(ExecTier::Interp);
    let program = (common.workload.build)(&common.params);
    let native = run_native_tiered(&program, common.profile.clone(), FUEL, tier)
        .map_err(|e| e.to_string())?;

    let mut fast = SdtConfig::ibtc_inline(4096);
    fast.ret = RetMechanism::FastReturn;
    let configs = [
        SdtConfig::reentry(),
        SdtConfig::ibtc_out_of_line(4096),
        SdtConfig::ibtc_inline(4096),
        SdtConfig::sieve(4096),
        SdtConfig::tuned(4096, 1024),
        fast,
    ];
    let mut t = Table::new(
        format!(
            "{} on {}: all mechanisms",
            program.name, common.profile.name
        ),
        &["configuration", "slowdown", "IB hit rate"],
    );
    for cfg in configs {
        let report = Sdt::new(cfg, &program)
            .and_then(|mut s| s.run(common.profile.clone(), FUEL))
            .map_err(|e| e.to_string())?;
        t.row([
            report.config.clone(),
            format!("{:.3}x", report.slowdown(native.total_cycles)),
            format!("{:.2}%", report.mech.ib_hit_rate() * 100.0),
        ]);
    }
    println!("{}", t.render_text());
    Ok(())
}
